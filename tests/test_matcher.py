"""Tests for matchers and cost models."""

from __future__ import annotations

import pytest

from repro.matching.matcher import CostModel, EditDistanceMatcher, JaccardMatcher

from tests.conftest import make_profile


class TestCostModel:
    def test_charge(self):
        model = CostModel(base=1.0, per_unit=0.5)
        assert model.charge(4) == 3.0

    def test_zero_units(self):
        assert CostModel(base=2.0, per_unit=1.0).charge(0) == 2.0


class TestJaccardMatcher:
    def test_identical_profiles_match(self):
        matcher = JaccardMatcher(0.5)
        a = make_profile(0, "alpha beta gamma")
        b = make_profile(1, "alpha beta gamma")
        result = matcher.evaluate(a, b)
        assert result.is_match
        assert result.similarity == 1.0

    def test_disjoint_profiles_do_not_match(self):
        matcher = JaccardMatcher(0.1)
        result = matcher.evaluate(make_profile(0, "alpha"), make_profile(1, "omega"))
        assert not result.is_match

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            JaccardMatcher(1.5)

    def test_stats_accumulate(self):
        matcher = JaccardMatcher(0.5)
        a, b = make_profile(0, "x1 y1"), make_profile(1, "x1 y1")
        matcher.evaluate(a, b)
        matcher.evaluate(a, make_profile(2, "zz"))
        assert matcher.comparisons_executed == 2
        assert matcher.matches_found == 1
        assert matcher.total_cost > 0
        assert matcher.mean_cost == pytest.approx(matcher.total_cost / 2)

    def test_reset_stats(self):
        matcher = JaccardMatcher(0.5)
        matcher.evaluate(make_profile(0, "aa bb"), make_profile(1, "aa bb"))
        matcher.reset_stats()
        assert matcher.comparisons_executed == 0
        assert matcher.mean_cost == 0.0

    def test_cost_grows_with_tokens(self):
        matcher = JaccardMatcher(0.5)
        small = matcher.estimate_cost(make_profile(0, "aa"), make_profile(1, "bb"))
        large = matcher.estimate_cost(
            make_profile(2, "aa bb cc dd ee"), make_profile(3, "ff gg hh ii jj")
        )
        assert large > small

    def test_estimate_does_not_execute(self):
        matcher = JaccardMatcher(0.5)
        matcher.estimate_cost(make_profile(0, "aa"), make_profile(1, "aa"))
        assert matcher.comparisons_executed == 0


class TestEditDistanceMatcher:
    def test_near_identical_match(self):
        matcher = EditDistanceMatcher(0.8)
        a = make_profile(0, "progressive entity resolution")
        b = make_profile(1, "progressive entity resolutino")
        assert matcher.evaluate(a, b).is_match

    def test_dissimilar_rejected_by_prefilter(self):
        matcher = EditDistanceMatcher(0.8)
        a = make_profile(0, "aaaa bbbb cccc")
        b = make_profile(1, "xxxx yyyy zzzz")
        result = matcher.evaluate(a, b)
        assert not result.is_match
        assert result.similarity <= matcher.prefilter_floor

    def test_prefilter_never_flips_positive_decisions(self):
        """Any pair at or above threshold must survive the bigram prefilter."""
        matcher = EditDistanceMatcher(0.7)
        pairs = [
            ("alice smith springfield", "alice smith springfeld"),
            ("the matrix 1999", "the matrix 1999 film"),
            ("data integration systems", "data integration system"),
        ]
        from repro.matching.similarity import normalized_edit_similarity

        for left, right in pairs:
            exact = normalized_edit_similarity(left, right)
            got = matcher.similarity(make_profile(0, left), make_profile(1, right))
            assert (got >= 0.7) == (exact >= 0.7)

    def test_quadratic_cost(self):
        matcher = EditDistanceMatcher(0.8)
        short = matcher.estimate_cost(make_profile(0, "ab"), make_profile(1, "cd"))
        long = matcher.estimate_cost(
            make_profile(2, "a" * 100), make_profile(3, "b" * 100)
        )
        assert long > short * 40

    def test_text_truncation_configurable(self):
        with pytest.raises(ValueError):
            EditDistanceMatcher(0.8, max_text_length=4)

    def test_ed_costs_exceed_js_costs(self):
        js = JaccardMatcher()
        ed = EditDistanceMatcher()
        a = make_profile(0, "some moderately long profile text here")
        b = make_profile(1, "another moderately long profile text there")
        assert ed.estimate_cost(a, b) > js.estimate_cost(a, b)

    def test_bigram_cache_reused(self):
        matcher = EditDistanceMatcher(0.8)
        a, b = make_profile(0, "alpha beta"), make_profile(1, "alpha beta")
        matcher.evaluate(a, b)
        cached = matcher._text_cache[a.pid]
        matcher.evaluate(a, b)
        assert matcher._text_cache[a.pid] is cached
