"""Tests for matchers and cost models."""

from __future__ import annotations

import pickle

import pytest

from repro.matching.matcher import (
    KERNEL_COUNTERS,
    CostModel,
    EditDistanceMatcher,
    JaccardMatcher,
)

from tests.conftest import make_profile


class TestCostModel:
    def test_charge(self):
        model = CostModel(base=1.0, per_unit=0.5)
        assert model.charge(4) == 3.0

    def test_zero_units(self):
        assert CostModel(base=2.0, per_unit=1.0).charge(0) == 2.0


class TestJaccardMatcher:
    def test_identical_profiles_match(self):
        matcher = JaccardMatcher(0.5)
        a = make_profile(0, "alpha beta gamma")
        b = make_profile(1, "alpha beta gamma")
        result = matcher.evaluate(a, b)
        assert result.is_match
        assert result.similarity == 1.0

    def test_disjoint_profiles_do_not_match(self):
        matcher = JaccardMatcher(0.1)
        result = matcher.evaluate(make_profile(0, "alpha"), make_profile(1, "omega"))
        assert not result.is_match

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            JaccardMatcher(1.5)

    def test_stats_accumulate(self):
        matcher = JaccardMatcher(0.5)
        a, b = make_profile(0, "x1 y1"), make_profile(1, "x1 y1")
        matcher.evaluate(a, b)
        matcher.evaluate(a, make_profile(2, "zz"))
        assert matcher.comparisons_executed == 2
        assert matcher.matches_found == 1
        assert matcher.total_cost > 0
        assert matcher.mean_cost == pytest.approx(matcher.total_cost / 2)

    def test_reset_stats(self):
        matcher = JaccardMatcher(0.5)
        matcher.evaluate(make_profile(0, "aa bb"), make_profile(1, "aa bb"))
        matcher.reset_stats()
        assert matcher.comparisons_executed == 0
        assert matcher.mean_cost == 0.0

    def test_cost_grows_with_tokens(self):
        matcher = JaccardMatcher(0.5)
        small = matcher.estimate_cost(make_profile(0, "aa"), make_profile(1, "bb"))
        large = matcher.estimate_cost(
            make_profile(2, "aa bb cc dd ee"), make_profile(3, "ff gg hh ii jj")
        )
        assert large > small

    def test_estimate_does_not_execute(self):
        matcher = JaccardMatcher(0.5)
        matcher.estimate_cost(make_profile(0, "aa"), make_profile(1, "aa"))
        assert matcher.comparisons_executed == 0


class TestEditDistanceMatcher:
    def test_near_identical_match(self):
        matcher = EditDistanceMatcher(0.8)
        a = make_profile(0, "progressive entity resolution")
        b = make_profile(1, "progressive entity resolutino")
        assert matcher.evaluate(a, b).is_match

    def test_dissimilar_rejected_by_prefilter(self):
        matcher = EditDistanceMatcher(0.8)
        a = make_profile(0, "aaaa bbbb cccc")
        b = make_profile(1, "xxxx yyyy zzzz")
        result = matcher.evaluate(a, b)
        assert not result.is_match
        assert result.similarity <= matcher.prefilter_floor

    def test_prefilter_never_flips_positive_decisions(self):
        """Any pair at or above threshold must survive the bigram prefilter."""
        matcher = EditDistanceMatcher(0.7)
        pairs = [
            ("alice smith springfield", "alice smith springfeld"),
            ("the matrix 1999", "the matrix 1999 film"),
            ("data integration systems", "data integration system"),
        ]
        from repro.matching.similarity import normalized_edit_similarity

        for left, right in pairs:
            exact = normalized_edit_similarity(left, right)
            got = matcher.similarity(make_profile(0, left), make_profile(1, right))
            assert (got >= 0.7) == (exact >= 0.7)

    def test_quadratic_cost(self):
        matcher = EditDistanceMatcher(0.8)
        short = matcher.estimate_cost(make_profile(0, "ab"), make_profile(1, "cd"))
        long = matcher.estimate_cost(
            make_profile(2, "a" * 100), make_profile(3, "b" * 100)
        )
        assert long > short * 40

    def test_text_truncation_configurable(self):
        with pytest.raises(ValueError):
            EditDistanceMatcher(0.8, max_text_length=4)

    def test_ed_costs_exceed_js_costs(self):
        js = JaccardMatcher()
        ed = EditDistanceMatcher()
        a = make_profile(0, "some moderately long profile text here")
        b = make_profile(1, "another moderately long profile text there")
        assert ed.estimate_cost(a, b) > js.estimate_cost(a, b)

    def test_bigram_cache_reused(self):
        matcher = EditDistanceMatcher(0.8)
        a, b = make_profile(0, "alpha beta"), make_profile(1, "alpha beta")
        matcher.evaluate(a, b)
        cached = matcher._text_cache[a.pid]
        matcher.evaluate(a, b)
        assert matcher._text_cache[a.pid] is cached


class TestShortTextRegression:
    """Texts shorter than one bigram must still classify correctly.

    Regression: the bigram prefilter saw an empty set for 0/1-character
    texts, scored the pair 0.0, and rejected *identical* profiles as
    non-matches.  Such pairs now route around the prefilter to the exact
    edit-distance kernel.
    """

    @pytest.mark.parametrize("text", ["x", "7", "𝄞"])
    def test_identical_one_char_profiles_match(self, text):
        matcher = EditDistanceMatcher(0.8)
        result = matcher.evaluate(make_profile(0, text), make_profile(1, text))
        assert result.similarity == 1.0
        assert result.is_match

    def test_one_char_versus_near_identical(self):
        # "ab" vs "a": distance 1 over longest 2 -> similarity 0.5; the
        # short side has an empty bigram set, so only the exact kernel can
        # produce this value (the old prefilter returned 0.0).
        matcher = EditDistanceMatcher(0.5)
        result = matcher.evaluate(make_profile(0, "ab"), make_profile(1, "a"))
        assert result.similarity == 0.5
        assert result.is_match

    def test_distinct_one_char_profiles_do_not_match(self):
        matcher = EditDistanceMatcher(0.8)
        result = matcher.evaluate(make_profile(0, "x"), make_profile(1, "y"))
        assert result.similarity == 0.0
        assert not result.is_match

    def test_batch_path_agrees_on_short_texts(self):
        matcher = EditDistanceMatcher(0.8)
        pairs = [
            (make_profile(0, "x"), make_profile(1, "x")),
            (make_profile(2, "a"), make_profile(3, "b")),
            (make_profile(4, "ab"), make_profile(5, "a")),
            (make_profile(6, "alpha beta"), make_profile(7, "alpha beta")),
        ]
        scalar = [EditDistanceMatcher(0.8).evaluate(x, y) for x, y in pairs]
        batched = matcher.evaluate_batch(pairs)
        assert batched == scalar
        assert batched[0].is_match


class TestEditDistanceKernelTelemetry:
    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            EditDistanceMatcher(0.8, kernel="simd")

    def test_staged_counts_cover_every_pair(self):
        matcher = EditDistanceMatcher(0.8)
        pairs = [
            (make_profile(0, "x"), make_profile(1, "x")),  # short text
            (make_profile(2, "aaaa bbbb"), make_profile(3, "xxxx yyyy")),  # prefilter
            (make_profile(4, "ab"), make_profile(5, "ab" * 40)),  # length cut
            (make_profile(6, "alpha beta"), make_profile(7, "alpha betas")),  # DP
        ]
        matcher.evaluate_batch(pairs)
        counts = matcher.kernel_telemetry()
        assert set(counts) == set(KERNEL_COUNTERS)
        assert counts["short_texts"] == 1
        assert counts["prefilter_rejects"] == 1
        assert counts["length_cuts"] == 1
        assert counts["dp_calls"] == 1
        matcher.reset_stats()
        assert all(value == 0 for value in matcher.kernel_telemetry().values())


class TestSnapshotExcludesDerivedCaches:
    def test_text_cache_not_in_snapshot(self):
        matcher = EditDistanceMatcher(0.8)
        for pid in range(50):
            matcher.evaluate(
                make_profile(2 * pid, f"profile number {pid} alpha beta gamma"),
                make_profile(2 * pid + 1, f"profile number {pid} alpha beta gamma!"),
            )
        assert len(matcher._text_cache) == 100
        state = matcher.snapshot_state()
        assert "_text_cache" not in state
        assert "_metrics" not in state

    def test_snapshot_payload_stays_bounded(self):
        """Checkpoint payload must not grow with the number of profiles
        seen — the text cache is derivable state."""
        matcher = EditDistanceMatcher(0.8)
        empty_size = len(pickle.dumps(matcher.snapshot_state()))
        for pid in range(500):
            matcher.evaluate(
                make_profile(2 * pid, f"some long profile text number {pid} " * 3),
                make_profile(2 * pid + 1, f"other profile text number {pid} " * 3),
            )
        warm_size = len(pickle.dumps(matcher.snapshot_state()))
        assert warm_size <= empty_size + 256

    def test_restore_rebuilds_cache_and_scores_identically(self):
        matcher = EditDistanceMatcher(0.8)
        pairs = [
            (
                make_profile(2 * pid, f"record {pid} alpha beta"),
                make_profile(2 * pid + 1, f"record {pid} alpha betas"),
            )
            for pid in range(20)
        ]
        expected = matcher.evaluate_batch(pairs)
        snapshot = matcher.snapshot_state()

        restored = EditDistanceMatcher(0.99)
        restored.restore_state(snapshot)
        assert restored.threshold == matcher.threshold
        assert restored._text_cache == {}
        assert restored.kernel_telemetry() == matcher.kernel_telemetry()
        fresh = EditDistanceMatcher(0.8)
        fresh.restore_state(snapshot)
        fresh.reset_stats()
        assert fresh.evaluate_batch(pairs) == expected
