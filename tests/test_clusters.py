"""Tests for union-find and entity clustering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import EntityClusters, UnionFind


class TestUnionFind:
    def test_unseen_items_are_their_own_root(self):
        assert UnionFind().find(7) == 7

    def test_union_and_connected(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)

    def test_union_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert not uf.union(2, 1)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.connected(1, 3)

    def test_component_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.component_size(1) == 3
        assert uf.component_size(99) == 1

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=60))
    @settings(max_examples=60)
    def test_matches_naive_model(self, edges):
        """Union-find connectivity equals a naive graph-reachability model."""
        uf = UnionFind()
        adjacency: dict[int, set[int]] = {}
        for left, right in edges:
            if left != right:
                uf.union(left, right)
                adjacency.setdefault(left, set()).add(right)
                adjacency.setdefault(right, set()).add(left)

        def reachable(start: int) -> set[int]:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor in adjacency.get(node, ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            return seen

        nodes = set(adjacency)
        for node in nodes:
            component = reachable(node)
            for other in nodes:
                assert uf.connected(node, other) == (other in component)


class TestEntityClusters:
    def test_simple_cluster(self):
        clusters = EntityClusters([(1, 2), (2, 3)])
        assert clusters.cluster_of(1) == frozenset({1, 2, 3})
        assert clusters.are_same_entity(1, 3)
        assert not clusters.are_same_entity(1, 4)

    def test_singletons_implicit(self):
        clusters = EntityClusters()
        assert clusters.cluster_of(5) == frozenset({5})
        assert clusters.are_same_entity(5, 5)

    def test_self_match_rejected(self):
        with pytest.raises(ValueError):
            EntityClusters().add_match(1, 1)

    def test_add_match_reports_merges(self):
        clusters = EntityClusters()
        assert clusters.add_match(1, 2)
        assert not clusters.add_match(2, 1)
        assert clusters.add_match(3, 4)
        assert clusters.add_match(2, 3)  # merges the two clusters

    def test_clusters_enumeration(self):
        clusters = EntityClusters([(1, 2), (3, 4), (4, 5)])
        all_clusters = {tuple(sorted(c)) for c in clusters.clusters()}
        assert all_clusters == {(1, 2), (3, 4, 5)}
        assert len(clusters) == 2

    def test_pair_count(self):
        clusters = EntityClusters([(1, 2), (3, 4), (4, 5)])
        assert clusters.pair_count() == 1 + 3

    def test_from_run_result(self, toy_dirty_dataset):
        """Typical downstream use: cluster the duplicates of a run."""
        from repro import resolve_stream

        result = resolve_stream(toy_dirty_dataset, budget=20.0)
        clusters = EntityClusters(result.duplicates)
        assert clusters.are_same_entity(0, 2)  # via (0,1),(1,2) or direct
        assert clusters.pair_count() >= len(result.duplicates)
