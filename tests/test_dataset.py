"""Tests for datasets and ground truth."""

from __future__ import annotations

import pytest

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile

from tests.conftest import make_profile


class TestGroundTruth:
    def test_contains_is_order_insensitive(self):
        truth = GroundTruth([(1, 2)])
        assert (1, 2) in truth
        assert (2, 1) in truth
        assert (1, 3) not in truth

    def test_len_deduplicates(self):
        assert len(GroundTruth([(1, 2), (2, 1)])) == 1

    def test_pair_completeness(self):
        truth = GroundTruth([(1, 2), (3, 4)])
        assert truth.pair_completeness([(2, 1)]) == 0.5
        assert truth.pair_completeness([(1, 2), (3, 4)]) == 1.0
        assert truth.pair_completeness([]) == 0.0

    def test_pair_completeness_empty_truth(self):
        assert GroundTruth().pair_completeness([(1, 2)]) == 1.0

    def test_iteration_yields_canonical_pairs(self):
        for left, right in GroundTruth([(5, 2)]):
            assert left < right


class TestDataset:
    def test_lookup_by_pid(self, toy_dirty_dataset):
        assert toy_dirty_dataset[3].pid == 3
        assert toy_dirty_dataset.get(999) is None

    def test_duplicate_pids_rejected(self):
        profiles = [make_profile(1, "a"), make_profile(1, "b")]
        with pytest.raises(ValueError):
            Dataset("bad", profiles, GroundTruth(), ERKind.DIRTY)

    def test_clean_clean_requires_sources_0_1(self):
        profiles = [make_profile(0, "a", source=2)]
        with pytest.raises(ValueError):
            Dataset("bad", profiles, GroundTruth(), ERKind.CLEAN_CLEAN)

    def test_source_sizes(self, toy_clean_clean_dataset):
        assert toy_clean_clean_dataset.source_sizes() == {0: 3, 1: 3}

    def test_dirty_predicate_allows_all_distinct(self, toy_dirty_dataset):
        predicate = toy_dirty_dataset.comparison_predicate()
        a, b = toy_dirty_dataset[0], toy_dirty_dataset[1]
        assert predicate(a, b)
        assert not predicate(a, a)

    def test_clean_clean_predicate_requires_cross_source(self, toy_clean_clean_dataset):
        predicate = toy_clean_clean_dataset.comparison_predicate()
        same_source = (toy_clean_clean_dataset[0], toy_clean_clean_dataset[1])
        cross_source = (toy_clean_clean_dataset[0], toy_clean_clean_dataset[3])
        assert not predicate(*same_source)
        assert predicate(*cross_source)

    def test_describe(self, toy_dirty_dataset):
        description = toy_dirty_dataset.describe()
        assert description["profiles"] == 6
        assert description["matches"] == 4
        assert description["kind"] == "dirty"

    def test_iteration_and_len(self, toy_dirty_dataset):
        assert len(toy_dirty_dataset) == 6
        assert sum(1 for _ in toy_dirty_dataset) == 6

    def test_repr(self, toy_dirty_dataset):
        assert "toy_dirty" in repr(toy_dirty_dataset)
