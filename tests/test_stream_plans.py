"""Tests for the varying-rate stream plan constructors."""

from __future__ import annotations

import pytest

from repro.core.increments import (
    make_bursty_stream_plan,
    make_poisson_stream_plan,
    split_into_increments,
)
from repro.evaluation.experiments import make_matcher, make_system
from repro.streaming.engine import StreamingEngine


class TestPoissonPlan:
    def test_non_decreasing_times(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 6)
        plan = make_poisson_stream_plan(increments, rate=2.0, seed=1)
        assert list(plan.arrival_times) == sorted(plan.arrival_times)

    def test_mean_rate_approximate(self, small_census):
        increments = split_into_increments(small_census, 200)
        plan = make_poisson_stream_plan(increments, rate=10.0, seed=2)
        duration = plan.arrival_times[-1] - plan.arrival_times[0]
        empirical_rate = (len(plan) - 1) / duration
        assert empirical_rate == pytest.approx(10.0, rel=0.3)

    def test_deterministic(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 6)
        a = make_poisson_stream_plan(increments, rate=3.0, seed=9)
        b = make_poisson_stream_plan(increments, rate=3.0, seed=9)
        assert a.arrival_times == b.arrival_times

    def test_validation(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2)
        with pytest.raises(ValueError):
            make_poisson_stream_plan(increments, rate=0.0)

    def test_engine_consumes_poisson_stream(self, small_dblp_acm):
        increments = split_into_increments(small_dblp_acm, 20, seed=0)
        plan = make_poisson_stream_plan(increments, rate=5.0, seed=3)
        engine = StreamingEngine(make_matcher("JS"), budget=60.0)
        result = engine.run(
            make_system("I-PES", small_dblp_acm), plan, small_dblp_acm.ground_truth
        )
        assert result.increments_ingested == 20
        assert result.final_pc > 0.5


class TestBurstyPlan:
    def test_burst_grouping(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 6)
        plan = make_bursty_stream_plan(increments, burst_size=2, burst_interval=5.0)
        assert plan.arrival_times == (0.0, 0.0, 5.0, 5.0, 10.0, 10.0)

    def test_validation(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2)
        with pytest.raises(ValueError):
            make_bursty_stream_plan(increments, burst_size=0, burst_interval=1.0)
        with pytest.raises(ValueError):
            make_bursty_stream_plan(increments, burst_size=1, burst_interval=0.0)

    def test_engine_consumes_bursty_stream(self, small_dblp_acm):
        increments = split_into_increments(small_dblp_acm, 12, seed=0)
        plan = make_bursty_stream_plan(increments, burst_size=4, burst_interval=3.0)
        engine = StreamingEngine(make_matcher("JS"), budget=60.0)
        result = engine.run(
            make_system("I-PES", small_dblp_acm), plan, small_dblp_acm.ground_truth
        )
        assert result.increments_ingested == 12
