"""Tests for the additional similarity functions (Jaro-Winkler, cosine)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.extra_similarity import cosine_tokens, jaro, jaro_winkler

short_text = st.text(alphabet="abcde", max_size=16)


class TestJaro:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("martha", "marhta", 0.944444),
            ("dixon", "dicksonx", 0.766667),
            ("jellyfish", "smellyfish", 0.896296),
            ("abc", "abc", 1.0),
            ("", "", 0.0),
            ("abc", "", 0.0),
            ("abc", "xyz", 0.0),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert jaro(a, b) == pytest.approx(expected, abs=1e-5)

    @given(short_text, short_text)
    def test_symmetry_and_bounds(self, a, b):
        value = jaro(a, b)
        assert 0.0 <= value <= 1.0
        assert value == pytest.approx(jaro(b, a))

    @given(st.text(alphabet="abcde", min_size=1, max_size=16))
    def test_identity(self, a):
        assert jaro(a, a) == 1.0


class TestJaroWinkler:
    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.961111, abs=1e-5)

    def test_prefix_boost(self):
        assert jaro_winkler("prefixed", "prefixes") > jaro("prefixed", "prefixes")

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("abcd", "xbcd") == pytest.approx(jaro("abcd", "xbcd"))

    def test_prefix_scale_validation(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    @given(short_text, short_text)
    @settings(max_examples=80)
    def test_dominates_jaro_and_bounded(self, a, b):
        jw = jaro_winkler(a, b)
        assert jaro(a, b) - 1e-12 <= jw <= 1.0


class TestCosineTokens:
    def test_identical(self):
        assert cosine_tokens(["a", "b"], ["a", "b"]) == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_tokens(["a"], ["b"]) == 0.0

    def test_empty(self):
        assert cosine_tokens([], ["a"]) == 0.0

    def test_multiset_sensitivity(self):
        once = cosine_tokens(["a", "b"], ["a", "c"])
        weighted = cosine_tokens(["a", "a", "a", "b"], ["a", "c"])
        assert weighted > once

    @given(
        st.lists(st.sampled_from("abcdef"), max_size=12),
        st.lists(st.sampled_from("abcdef"), max_size=12),
    )
    def test_bounds_and_symmetry(self, x, y):
        value = cosine_tokens(x, y)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value == pytest.approx(cosine_tokens(y, x))
