"""Bit-identity tests for the batched matcher kernel.

The engines' batched execution path is only sound if ``evaluate_batch``
produces *exactly* the scalar results — same similarities, same costs, same
stats and metrics counters, in the same accumulation order.  These tests
compare the two paths pair by pair on real dataset profiles for both
matchers, check the vectorized similarity kernels against their scalar
definitions, and pin the ``supports_batch`` contract for wrapped matchers.
"""

from __future__ import annotations

import random

from repro.evaluation.experiments import make_matcher
from repro.matching.similarity import dice_batch, jaccard, jaccard_batch
from repro.observability.metrics import MetricsRegistry
from repro.resilience import FaultyMatcher


def _sample_pairs(dataset, n=200, seed=7):
    rng = random.Random(seed)
    profiles = dataset.profiles
    return [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(n)
    ]


def _run_scalar(matcher, pairs):
    registry = MetricsRegistry()
    matcher.bind_metrics(registry)
    results = [matcher.evaluate(x, y) for x, y in pairs]
    return results, registry.snapshot(include_wall=False)["counters"]


def _run_batched(matcher, pairs):
    registry = MetricsRegistry()
    matcher.bind_metrics(registry)
    results = matcher.evaluate_batch(pairs)
    return results, registry.snapshot(include_wall=False)["counters"]


def _assert_identical(matcher_name, pairs):
    scalar_matcher = make_matcher(matcher_name)
    batched_matcher = make_matcher(matcher_name)
    scalar_results, scalar_counters = _run_scalar(scalar_matcher, pairs)
    batched_results, batched_counters = _run_batched(batched_matcher, pairs)
    assert len(scalar_results) == len(batched_results)
    for scalar, batched in zip(scalar_results, batched_results):
        assert scalar.similarity == batched.similarity
        assert scalar.cost == batched.cost
        assert scalar.is_match == batched.is_match
    assert scalar_counters == batched_counters
    # Float accumulations must agree bit-for-bit (same summation order).
    assert scalar_matcher.total_cost == batched_matcher.total_cost
    assert scalar_matcher.comparisons_executed == batched_matcher.comparisons_executed
    assert scalar_matcher.matches_found == batched_matcher.matches_found


def test_jaccard_batch_bit_identical(small_dblp_acm):
    assert make_matcher("JS").supports_batch
    _assert_identical("JS", _sample_pairs(small_dblp_acm))


def test_edit_distance_batch_bit_identical(small_movies):
    assert make_matcher("ED").supports_batch
    _assert_identical("ED", _sample_pairs(small_movies))


def test_estimate_cost_batch_matches_scalar(small_dblp_acm):
    pairs = _sample_pairs(small_dblp_acm, n=100)
    for name in ("JS", "ED"):
        matcher = make_matcher(name)
        batched = matcher.estimate_cost_batch(pairs)
        scalar = [matcher.estimate_cost(x, y) for x, y in pairs]
        assert batched == scalar


def test_similarity_kernels_match_scalar_definitions():
    sets = [
        (set(), set()),
        ({"a"}, set()),
        ({"a", "b"}, {"b", "c"}),
        ({"a", "b", "c"}, {"a", "b", "c"}),
        (set("abcdef"), set("defghi")),
    ]
    assert jaccard_batch(sets) == [jaccard(x, y) for x, y in sets]
    expected_dice = [
        0.0 if not x or not y else 2.0 * len(x & y) / (len(x) + len(y)) for x, y in sets
    ]
    assert dice_batch(sets) == expected_dice


def test_faulty_matcher_opts_out_of_batching(small_dblp_acm):
    """Fault injection sequences failures by call order, so the wrapper must
    stay on the scalar path — and its looping ``evaluate_batch`` must replay
    the exact fault schedule."""
    wrapped = FaultyMatcher(make_matcher("JS"), seed=3, failure_rate=0.0)
    assert wrapped.supports_batch is False

    pairs = _sample_pairs(small_dblp_acm, n=50)
    scalar_results, _ = _run_scalar(FaultyMatcher(make_matcher("JS"), seed=3, failure_rate=0.0), pairs)
    batched_results, _ = _run_batched(wrapped, pairs)
    for scalar, batched in zip(scalar_results, batched_results):
        assert scalar.similarity == batched.similarity
        assert scalar.cost == batched.cost


def test_base_matcher_fallback_loops(small_dblp_acm):
    """A matcher without ``supports_batch`` evaluates pair-at-a-time."""
    matcher = make_matcher("JS")
    matcher.supports_batch = False
    pairs = _sample_pairs(small_dblp_acm, n=20)
    results, _ = _run_batched(matcher, pairs)
    reference, _ = _run_scalar(make_matcher("JS"), pairs)
    for got, want in zip(results, reference):
        assert got == want
