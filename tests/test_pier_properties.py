"""Definition-level tests: the four PIER properties of the paper (Def. 3).

These integration tests assert, on small synthetic datasets, the properties
that define progressive incremental ER:

* improved early quality vs. batch ER,
* comparable eventual quality,
* incrementality (per-increment cost ≪ batch recomputation),
* globality (comparisons across increments are prioritized globally).
"""

from __future__ import annotations

import pytest

from repro.core.increments import Increment, make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher, make_system
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES
from repro.progressive.pps import PPSSystem
from repro.streaming.engine import StreamingEngine
from repro.streaming.system import PipelineStats

PIER_ALGORITHMS = ("I-PES", "I-PCS", "I-PBS")


def _run(dataset, algorithm, budget=200.0, n_increments=15, rate=None, matcher="JS"):
    if algorithm in ("PPS", "PBS", "BATCH") and rate is None:
        increments = split_into_increments(dataset, 1, seed=0)
    else:
        increments = split_into_increments(dataset, n_increments, seed=0)
    plan = make_stream_plan(increments, rate=rate)
    engine = StreamingEngine(make_matcher(matcher), budget=budget)
    return engine.run(make_system(algorithm, dataset), plan, dataset.ground_truth)


class TestImprovedEarlyQuality:
    @pytest.mark.parametrize("algorithm", PIER_ALGORITHMS)
    def test_early_auc_beats_batch(self, small_dblp_acm, algorithm):
        pier = _run(small_dblp_acm, algorithm)
        batch = _run(small_dblp_acm, "BATCH")
        horizon = min(pier.clock_end, batch.clock_end)
        assert pier.curve.area_under_curve(horizon) > batch.curve.area_under_curve(horizon)


class TestComparableEventualQuality:
    @pytest.mark.parametrize("algorithm", PIER_ALGORITHMS)
    def test_eventual_pc_close_to_batch(self, small_dblp_acm, algorithm):
        pier = _run(small_dblp_acm, algorithm, budget=500.0)
        batch = _run(small_dblp_acm, "BATCH", budget=500.0)
        assert pier.final_pc >= batch.final_pc - 0.05


class TestIncrementality:
    def test_increment_cost_much_less_than_batch_reprocessing(self, small_dblp_acm):
        """Ingesting ΔD_i into PIER costs far less (virtual time) than
        re-running the batch pipeline on D_i = D_{i-1} ⊎ ΔD_i."""
        increments = split_into_increments(small_dblp_acm, 10, seed=0)
        pier = make_system("I-PES", small_dblp_acm)
        incremental_costs = [pier.ingest(increment) for increment in increments]

        batch = PPSSystem(clean_clean=True)
        batch_stats = PipelineStats(
            now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0
        )
        cumulative_batch_costs = []
        for increment in increments:
            cumulative_batch_costs.append(
                batch.ingest(increment) + batch.emit(batch_stats).cost
            )
        # for late increments, PIER's marginal cost must undercut the batch
        # pipeline's full reassessment by a wide margin
        assert incremental_costs[-1] < cumulative_batch_costs[-1] / 3


class TestGlobality:
    def test_inter_increment_pairs_found(self, toy_dirty_dataset):
        """Profiles of a match split across increments are still compared."""
        result = _run(toy_dirty_dataset, "I-PES", n_increments=6)
        assert result.final_pc == 1.0

    def test_best_global_comparison_wins_over_recency(self):
        """A strong pair from increment 1 outranks weak pairs of increment 2
        once both are in the index (the globality condition)."""
        from tests.conftest import make_profile

        system = PierSystem(IPES(beta=0.01))
        first = (
            make_profile(0, "alpha beta gamma delta"),
            make_profile(1, "alpha beta gamma delta"),
        )
        system.ingest(Increment(0, first))
        # pretend nothing was emitted yet; now a weak increment arrives
        second = (make_profile(2, "alpha"), make_profile(3, "zzz unrelated"))
        system.ingest(Increment(1, second))
        assert system.strategy.dequeue() == (0, 1)

    def test_work_continues_while_waiting(self, small_dblp_acm):
        """On a slow stream, PIER keeps executing comparisons during the
        inter-arrival gaps instead of idling (contrast with I-BASE)."""
        increments = split_into_increments(small_dblp_acm, 10, seed=0)
        plan = make_stream_plan(increments, rate=0.5)  # 2s gaps
        engine = StreamingEngine(make_matcher("JS"), budget=30.0)
        pier = engine.run(make_system("I-PES", small_dblp_acm), plan, small_dblp_acm.ground_truth)
        engine2 = StreamingEngine(make_matcher("JS"), budget=30.0)
        ibase = engine2.run(
            make_system("I-BASE", small_dblp_acm), plan, small_dblp_acm.ground_truth
        )
        assert pier.comparisons_executed > ibase.comparisons_executed


class TestAdaptivity:
    def test_pier_beats_ibase_on_fast_streams(self, small_dbpedia):
        """The paper's headline: on fast streams with an expensive matcher,
        PIER dominates I-BASE in early quality."""
        pier = _run(
            small_dbpedia, "I-PES", n_increments=40, rate=32.0, matcher="ED", budget=60.0
        )
        ibase = _run(
            small_dbpedia, "I-BASE", n_increments=40, rate=32.0, matcher="ED", budget=60.0
        )
        horizon = 60.0
        assert pier.curve.area_under_curve(horizon) > ibase.curve.area_under_curve(horizon)

    def test_naive_adaptations_collapse_on_fast_streams(self, small_movies):
        pes = _run(small_movies, "I-PES", n_increments=80, rate=64.0, matcher="ED", budget=30.0)
        local = _run(
            small_movies, "PPS-LOCAL", n_increments=80, rate=64.0, matcher="ED", budget=30.0
        )
        assert pes.final_pc > local.final_pc
