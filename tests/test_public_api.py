"""Tests for the top-level public API."""

from __future__ import annotations

import pytest

import repro
from repro import load_dataset, resolve_stream


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestResolveStream:
    def test_static_run(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, n_increments=3, budget=10.0)
        assert result.system_name == "PIER[I-PES]"
        assert result.final_pc > 0.0

    def test_algorithm_selection(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, algorithm="I-BASE", budget=10.0)
        assert result.system_name == "I-BASE"

    def test_matcher_selection(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, matcher="ED", budget=10.0)
        assert result.matcher_name == "ED"

    def test_rate_none_is_static(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, rate=None, budget=10.0)
        assert result.stream_consumed_at is not None

    def test_unknown_algorithm(self, toy_dirty_dataset):
        with pytest.raises(ValueError):
            resolve_stream(toy_dirty_dataset, algorithm="MAGIC")

    def test_seed_determinism(self, small_census):
        a = resolve_stream(small_census, n_increments=5, rate=4.0, budget=15.0, seed=3)
        b = resolve_stream(small_census, n_increments=5, rate=4.0, budget=15.0, seed=3)
        assert a.final_pc == b.final_pc
        assert a.comparisons_executed == b.comparisons_executed

    def test_duplicates_are_canonical_pairs(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, budget=10.0)
        for left, right in result.duplicates:
            assert left < right

    def test_match_events_align_with_curve(self, toy_dirty_dataset):
        result = resolve_stream(toy_dirty_dataset, budget=10.0)
        assert len(result.match_events) == int(
            result.final_pc * len(toy_dirty_dataset.ground_truth) + 0.5
        )
        times = [time for time, _ in result.match_events]
        assert times == sorted(times)


class TestLoadDatasetViaTopLevel:
    def test_available(self):
        assert "movies" in repro.available_datasets()

    def test_load(self):
        dataset = load_dataset("movies", scale=0.05)
        assert len(dataset) > 0
