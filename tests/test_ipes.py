"""Tests for the I-PES entity-centric strategy (Algorithm 4)."""

from __future__ import annotations

from repro.core.comparison import WeightedComparison
from repro.core.increments import Increment
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES

from tests.conftest import make_profile


def _system(**kwargs) -> PierSystem:
    return PierSystem(IPES(**kwargs))


def _drain(strategy: IPES) -> list[tuple[int, int]]:
    pairs = []
    while True:
        pair = strategy.dequeue()
        if pair is None:
            return pairs
        pairs.append(pair)


class TestInsertion:
    def test_first_comparison_creates_entity_queue(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 5.0))
        assert 0 in strategy.entity_pq
        assert len(strategy) == 1

    def test_improving_comparison_updates_entity_queue(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 2.0))
        strategy._insert_weighted(WeightedComparison.of(0, 2, 5.0))
        # second beats E_PQ(0).top → stored under entity 0 again
        assert strategy._top_weight(0) == 5.0

    def test_low_weight_goes_to_overflow(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 10.0))
        strategy._insert_weighted(WeightedComparison.of(0, 2, 9.0))
        strategy._insert_weighted(WeightedComparison.of(3, 4, 8.0))
        # (0,3) with weight 1: below both endpoints' tops and below the
        # global average (10+9+8+1)/4 = 7 → demoted to PQ
        strategy._insert_weighted(WeightedComparison.of(0, 3, 1.0))
        assert len(strategy.overflow) >= 1

    def test_mid_weight_insert_respects_entity_average(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 10.0))
        strategy._insert_weighted(WeightedComparison.of(2, 3, 2.0))
        # weight 8: below E_PQ(0).top, below E_PQ(1) top? p1's queue empty
        # (weight stored under p0), so (1, 4) starts p1's queue
        strategy._insert_weighted(WeightedComparison.of(1, 4, 8.0))
        assert strategy._top_weight(1) == 8.0

    def test_global_average_tracked(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 4.0))
        strategy._insert_weighted(WeightedComparison.of(2, 3, 2.0))
        assert strategy.total_weight == 6.0
        assert strategy.count == 2


class TestEmission:
    def test_best_entity_first(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 1.0))
        strategy._insert_weighted(WeightedComparison.of(2, 3, 9.0))
        assert strategy.dequeue() == (2, 3)

    def test_drain_returns_everything_once(self):
        strategy = IPES()
        inserted = {(0, 1), (2, 3), (4, 5)}
        for index, (x, y) in enumerate(sorted(inserted)):
            strategy._insert_weighted(WeightedComparison.of(x, y, float(index + 1)))
        assert set(_drain(strategy)) == inserted

    def test_entity_queue_refilled_when_stale(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 5.0))
        strategy._insert_weighted(WeightedComparison.of(0, 2, 7.0))
        pairs = _drain(strategy)
        assert set(pairs) == {(0, 1), (0, 2)}

    def test_overflow_used_after_entities_drain(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 10.0))
        strategy._insert_weighted(WeightedComparison.of(0, 2, 9.0))
        strategy._insert_weighted(WeightedComparison.of(0, 3, 0.5))  # overflow
        pairs = _drain(strategy)
        assert pairs[-1] == (0, 3)

    def test_dequeue_empty(self):
        assert IPES().dequeue() is None


class TestWithinSystem:
    def test_entity_with_strongest_evidence_emitted_first(self):
        system = _system(beta=0.01)
        profiles = (
            make_profile(0, "alpha beta gamma"),
            make_profile(1, "alpha beta gamma"),  # strong pair (0,1)
            make_profile(2, "delta"),
            make_profile(3, "delta epsilon"),      # weaker pair (2,3)
        )
        system.ingest(Increment(0, profiles))
        assert system.strategy.dequeue() == (0, 1)

    def test_refill_on_idle(self):
        system = _system()
        system.ingest(Increment(0, (make_profile(0, "a1 b1"), make_profile(1, "a1 b1"))))
        _drain(system.strategy)
        stats = __import__(
            "repro.streaming.system", fromlist=["PipelineStats"]
        ).PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)
        # (0,1) was never executed through emit(), so refill re-offers it
        assert system.on_idle(stats) is not None
        assert len(system.strategy) > 0

    def test_exhausted_lifecycle(self):
        system = _system()
        strategy: IPES = system.strategy
        assert strategy.exhausted(system)
        system.ingest(Increment(0, (make_profile(0, "a1"), make_profile(1, "a1"))))
        assert not strategy.exhausted(system)

    def test_len_counts_entities_and_overflow(self):
        strategy = IPES()
        strategy._insert_weighted(WeightedComparison.of(0, 1, 10.0))
        strategy._insert_weighted(WeightedComparison.of(0, 2, 9.0))
        strategy._insert_weighted(WeightedComparison.of(0, 3, 0.1))
        assert len(strategy) == 3
        strategy.dequeue()
        assert len(strategy) == 2
