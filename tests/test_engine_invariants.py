"""Cross-cutting engine invariants (both engines, several systems)."""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher, make_system
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

SYSTEMS = ("I-PES", "I-PCS", "I-PBS", "I-BASE")
ENGINES = (StreamingEngine, PipelinedStreamingEngine)


@pytest.mark.parametrize("system_name", SYSTEMS)
@pytest.mark.parametrize("engine_factory", ENGINES)
def test_recorder_matches_matcher_counts(system_name, engine_factory, small_dblp_acm):
    """Every comparison the engine records went through the matcher."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 8, seed=0), rate=5.0)
    matcher = make_matcher("JS")
    engine = engine_factory(matcher, budget=60.0)
    result = engine.run(make_system(system_name, small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    assert result.comparisons_executed == matcher.comparisons_executed


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_duplicates_subset_of_executed_matches(engine_factory, small_dblp_acm):
    """Classified duplicates that are true matches appear in match_events."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 5, seed=0), rate=None)
    engine = engine_factory(make_matcher("JS"), budget=60.0)
    result = engine.run(make_system("I-PES", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    event_pairs = {pair for _, pair in result.match_events}
    true_duplicates = {
        pair for pair in result.duplicates if pair in small_dblp_acm.ground_truth
    }
    assert true_duplicates <= event_pairs


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_engines_agree_on_exhaustive_outcome(system_name, small_dblp_acm):
    """Given enough budget, serial and pipelined engines finish with the
    same final PC (the same work gets done, only timing differs)."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 10, seed=0), rate=20.0)
    serial = StreamingEngine(make_matcher("JS"), budget=500.0).run(
        make_system(system_name, small_dblp_acm), plan, small_dblp_acm.ground_truth
    )
    pipelined = PipelinedStreamingEngine(make_matcher("JS"), budget=500.0).run(
        make_system(system_name, small_dblp_acm), plan, small_dblp_acm.ground_truth
    )
    assert serial.work_exhausted and pipelined.work_exhausted
    assert serial.final_pc == pytest.approx(pipelined.final_pc, abs=0.02)


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_budget_zero_comparisons_before_first_arrival(engine_factory, small_dblp_acm):
    plan = make_stream_plan(
        split_into_increments(small_dblp_acm, 4, seed=0), rate=1.0, start_time=10.0
    )
    engine = engine_factory(make_matcher("JS"), budget=60.0)
    result = engine.run(make_system("I-PES", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    assert result.curve.pc_at_time(9.9) == 0.0
