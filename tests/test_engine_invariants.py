"""Cross-cutting engine invariants (both engines, several systems)."""

from __future__ import annotations

import pytest

from repro.core.increments import Increment, make_stream_plan, split_into_increments
from repro.core.dataset import GroundTruth
from repro.core.profile import EntityProfile
from repro.evaluation.experiments import make_matcher, make_system
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine
from repro.streaming.system import EmitResult, ERSystem, PipelineStats

SYSTEMS = ("I-PES", "I-PCS", "I-PBS", "I-BASE")
ENGINES = (StreamingEngine, PipelinedStreamingEngine)


@pytest.mark.parametrize("system_name", SYSTEMS)
@pytest.mark.parametrize("engine_factory", ENGINES)
def test_recorder_matches_matcher_counts(system_name, engine_factory, small_dblp_acm):
    """Every comparison the engine records went through the matcher."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 8, seed=0), rate=5.0)
    matcher = make_matcher("JS")
    engine = engine_factory(matcher, budget=60.0)
    result = engine.run(make_system(system_name, small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    assert result.comparisons_executed == matcher.comparisons_executed


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_duplicates_subset_of_executed_matches(engine_factory, small_dblp_acm):
    """Classified duplicates that are true matches appear in match_events."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 5, seed=0), rate=None)
    engine = engine_factory(make_matcher("JS"), budget=60.0)
    result = engine.run(make_system("I-PES", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    event_pairs = {pair for _, pair in result.match_events}
    true_duplicates = {
        pair for pair in result.duplicates if pair in small_dblp_acm.ground_truth
    }
    assert true_duplicates <= event_pairs


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_engines_agree_on_exhaustive_outcome(system_name, small_dblp_acm):
    """Given enough budget, serial and pipelined engines finish with the
    same final PC (the same work gets done, only timing differs)."""
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 10, seed=0), rate=20.0)
    serial = StreamingEngine(make_matcher("JS"), budget=500.0).run(
        make_system(system_name, small_dblp_acm), plan, small_dblp_acm.ground_truth
    )
    pipelined = PipelinedStreamingEngine(make_matcher("JS"), budget=500.0).run(
        make_system(system_name, small_dblp_acm), plan, small_dblp_acm.ground_truth
    )
    assert serial.work_exhausted and pipelined.work_exhausted
    assert serial.final_pc == pytest.approx(pipelined.final_pc, abs=0.02)


class _BackpressureProbe(ERSystem):
    """Accepts one increment, then refuses: captures the backlog the engine
    reports to ``emit`` while arrived increments queue up."""

    name = "backpressure-probe"

    def __init__(self) -> None:
        self.seen_backlogs: list[int] = []
        self._ingested = 0
        self._profile = EntityProfile(0, {"a": "x"})

    def ingest(self, increment: Increment) -> float:
        self._ingested += 1
        return 0.1

    def ready_for_ingest(self) -> bool:
        return self._ingested == 0

    def emit(self, stats: PipelineStats) -> EmitResult:
        self.seen_backlogs.append(stats.backlog)
        return EmitResult(batch=(), cost=0.0)

    def profile(self, pid: int) -> EntityProfile:
        return self._profile


def test_stats_report_true_backlog_under_backpressure():
    """The engine must report arrived-but-uningested increments, not 0.

    Five increments arrive at t=0; the probe ingests one and then refuses,
    so each emission round must see the remaining queue: 4, 3, 2, 1, 0 as
    the engine force-feeds one increment per round.
    """
    increments = [Increment(i, ()) for i in range(5)]
    plan = make_stream_plan(increments, rate=None)
    probe = _BackpressureProbe()
    engine = StreamingEngine(make_matcher("JS"), budget=60.0)
    engine.run(probe, plan, GroundTruth([]))
    assert probe.seen_backlogs[0] == 4
    assert max(probe.seen_backlogs) > 0
    assert sorted(probe.seen_backlogs, reverse=True) == probe.seen_backlogs


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_backlog_nonzero_on_fast_stream(engine_factory, small_dblp_acm):
    """A fast stream against a back-pressured system must surface nonzero
    backlog to findK / the metrics layer (regression: it was hardcoded 0)."""
    plan = make_stream_plan(
        split_into_increments(small_dblp_acm, 40, seed=0), rate=1000.0
    )
    system = make_system("I-BASE", small_dblp_acm, high_watermark=20, chunk_size=4)
    engine = engine_factory(make_matcher("ED"), budget=120.0)
    result = engine.run(system, plan, small_dblp_acm.ground_truth)
    samples = result.details["metrics"]["rounds"]["samples"]
    assert max(sample["backlog"] for sample in samples) > 0


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_budget_zero_comparisons_before_first_arrival(engine_factory, small_dblp_acm):
    plan = make_stream_plan(
        split_into_increments(small_dblp_acm, 4, seed=0), rate=1.0, start_time=10.0
    )
    engine = engine_factory(make_matcher("JS"), budget=60.0)
    result = engine.run(make_system("I-PES", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    assert result.curve.pc_at_time(9.9) == 0.0
