"""Tests for the process-parallel matching fleet (``repro.parallel``).

The contract under test is the tentpole guarantee: parallelism is an
executor choice, never a semantics choice.  Whatever the worker count,

* a run's progress curve, duplicates, comparison count, and virtual
  clocks are bit-identical to the serial run;
* the exported metric snapshot differs only in the ``parallel.*``
  telemetry and the wall-only ``scatter`` phase
  (:func:`strip_parallel_telemetry` removes exactly that surface);
* mid-run checkpoints carry byte-identical ``metrics_state`` — parallel
  telemetry flushes at finalize, after the last possible checkpoint;
* a pool that cannot start or breaks degrades to in-process scoring with
  the same results, counted in ``parallel.fallbacks``;
* fresh profiles cross the process boundary once, through read-only
  shared-memory segments when the startup probe succeeds (inline pickles
  otherwise) — transport choice never changes results;
* matchers that cannot batch (``FaultyMatcher``) never reach the pool.
"""

from __future__ import annotations

import random

import pytest

from repro.api import ERSession
from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import ExperimentConfig, _build_matcher, _build_system
from repro.parallel import WorkerPool, strip_parallel_telemetry
from repro.parallel.cells import run_cells
from repro.resilience import ResilienceConfig, SimulatedCrash
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

STRATEGIES = ["I-PCS", "I-PBS", "I-PES", "I-BASE"]
ENGINES = {"serial": StreamingEngine, "pipelined": PipelinedStreamingEngine}
BUDGET = 8.0


@pytest.fixture(scope="module")
def dataset(small_dblp_acm):
    return small_dblp_acm


@pytest.fixture(scope="module")
def plan(small_dblp_acm):
    increments = split_into_increments(small_dblp_acm, 8, seed=0)
    return make_stream_plan(increments, rate=5.0)


@pytest.fixture(scope="module")
def ed_pool():
    """One shared 2-worker ED pool for the whole module (spawn is slow).

    ``min_shard=1`` so even the small per-round batches of the test
    dataset shard — the production threshold only changes *when* the pool
    is consulted, never the results.
    """
    pool = WorkerPool.create(2, _build_matcher("ED"), min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    yield pool
    pool.close()


def _comparable(result):
    """Everything observable about a run except wall clocks and the
    parallel telemetry (the documented divergence surface)."""
    metrics = strip_parallel_telemetry(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "stream_consumed_at": result.stream_consumed_at,
        "work_exhausted": result.work_exhausted,
        "increments_ingested": result.increments_ingested,
        "match_events": result.match_events,
        "metrics": metrics,
    }


def _checkpoint_fingerprint(checkpoint):
    """The deterministic portion of a checkpoint — only wall clocks go.

    Notably ``metrics_state`` is compared *without* any parallel
    stripping: mid-run telemetry never reaches the registry, so the
    checkpoint bytes must already coincide across worker counts.
    """
    metrics_state = dict(checkpoint.metrics_state)
    metrics_state["phases"] = {
        phase: (virtual_s, count)
        for phase, (virtual_s, _wall_s, count) in metrics_state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.budget,
        checkpoint.plan_fingerprint,
        checkpoint.clock,
        checkpoint.ingest_clock,
        checkpoint.next_arrival,
        checkpoint.consumed_at,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.shed,
        checkpoint.duplicates_dropped,
        checkpoint.seen_increments,
        checkpoint.duplicates,
        checkpoint.quarantined,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        metrics_state,
    )


def _run(engine_cls, dataset, plan, strategy, *, workers=1, pool=None, **kwargs):
    engine = engine_cls(
        _build_matcher("ED"), budget=BUDGET, workers=workers, pool=pool, **kwargs
    )
    result = engine.run(_build_system(strategy, dataset), plan, dataset.ground_truth)
    engine.close_pool()
    return result, engine.last_checkpoint


# ----------------------------------------------------------------------
# Pool unit level: sharded scoring is the in-process kernel, verbatim
# ----------------------------------------------------------------------
@pytest.mark.parametrize("matcher_name", ["JS", "ED"])
def test_pool_batch_scores_bit_identical(dataset, matcher_name):
    matcher = _build_matcher(matcher_name)
    rng = random.Random(3)
    profiles = dataset.profiles
    pairs = [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(150)
    ]
    reference = _build_matcher(matcher_name)._batch_scores(pairs)
    pool = WorkerPool.create(2, matcher, min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    try:
        pool.begin_run()
        assert pool.batch_scores(pairs) == reference
        # A second round reuses the workers' profile caches; still identical.
        assert pool.batch_scores(pairs[::-1]) == (reference[0][::-1], reference[1][::-1])
    finally:
        pool.close()


def test_pool_shm_transport_publishes_each_profile_once(dataset, ed_pool):
    """With shm active, fresh profiles ship once through shared memory and
    repeat rounds publish nothing new — while staying bit-identical."""
    if not ed_pool.shm_active:
        pytest.skip("shared-memory transport unavailable on this host")
    rng = random.Random(11)
    profiles = dataset.profiles
    pairs = [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(120)
    ]
    reference = _build_matcher("ED")._batch_scores(pairs)
    ed_pool.begin_run()
    segments_before = ed_pool.shm_segments_published
    assert ed_pool.batch_scores(pairs) == reference
    first_round = ed_pool.shm_segments_published - segments_before
    assert first_round > 0
    assert ed_pool.shm_bytes_published > 0
    # Same profiles again: the per-run published set makes the second
    # round metadata-only.
    assert ed_pool.batch_scores(pairs[::-1]) == (
        reference[0][::-1],
        reference[1][::-1],
    )
    assert ed_pool.shm_segments_published - segments_before == first_round


def test_pool_pickle_fallback_bit_identical(dataset):
    """A pool whose shm probe failed degrades to inline pickled profiles
    with identical results and zero shm telemetry."""
    pool = WorkerPool.create(2, _build_matcher("ED"), min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    try:
        pool._use_shm = False
        rng = random.Random(13)
        profiles = dataset.profiles
        pairs = [
            (
                profiles[rng.randrange(len(profiles))],
                profiles[rng.randrange(len(profiles))],
            )
            for _ in range(80)
        ]
        reference = _build_matcher("ED")._batch_scores(pairs)
        pool.begin_run()
        assert not pool.shm_active
        assert pool.batch_scores(pairs) == reference
        assert pool.shm_segments_published == 0
        assert pool.shm_bytes_published == 0
    finally:
        pool.close()


def test_pool_create_refuses_single_worker():
    assert WorkerPool.create(1, _build_matcher("JS")) is None


def test_pool_close_is_idempotent():
    pool = WorkerPool.create(2, _build_matcher("JS"), min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    pool.close()
    pool.close()
    assert not pool.healthy


# ----------------------------------------------------------------------
# Engine level: worker-count invariance across strategies and engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_worker_count_invariance_serial_engine(dataset, plan, strategy, ed_pool):
    serial, serial_ckpt = _run(
        StreamingEngine, dataset, plan, strategy, checkpoint_every=2.0
    )
    sharded, sharded_ckpt = _run(
        StreamingEngine,
        dataset,
        plan,
        strategy,
        workers=ed_pool.size,
        pool=ed_pool,
        checkpoint_every=2.0,
    )
    assert _comparable(sharded) == _comparable(serial)
    assert _checkpoint_fingerprint(sharded_ckpt) == _checkpoint_fingerprint(serial_ckpt)
    counters = sharded.details["metrics"]["counters"]
    assert counters["parallel.rounds_sharded"] > 0
    assert counters["parallel.fallbacks"] == 0
    assert sharded.details["metrics"]["gauges"]["parallel.workers"] == ed_pool.size
    assert serial.details["metrics"]["gauges"]["parallel.workers"] == 1.0


def test_worker_count_invariance_pipelined_engine(dataset, plan, ed_pool):
    serial, _ = _run(PipelinedStreamingEngine, dataset, plan, "I-PES")
    sharded, _ = _run(
        PipelinedStreamingEngine,
        dataset,
        plan,
        "I-PES",
        workers=ed_pool.size,
        pool=ed_pool,
    )
    assert _comparable(sharded) == _comparable(serial)
    assert sharded.details["metrics"]["counters"]["parallel.rounds_sharded"] > 0


def test_sharded_run_reports_shm_and_kernel_telemetry(dataset, plan, ed_pool):
    """Sharded runs surface the shm transfer counters, and the workers'
    staged-scoring outcomes merge back so ``matcher.kernel.*`` telemetry is
    bit-identical to the serial run (it is NOT stripped by
    :func:`strip_parallel_telemetry`)."""
    serial, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    sharded, _ = _run(
        StreamingEngine, dataset, plan, "I-PES", workers=ed_pool.size, pool=ed_pool
    )
    counters = sharded.details["metrics"]["counters"]
    serial_counters = serial.details["metrics"]["counters"]
    kernel_keys = [key for key in counters if key.startswith("matcher.kernel.")]
    assert kernel_keys
    assert counters["matcher.kernel.dp_calls"] > 0
    for key in kernel_keys:
        assert counters[key] == serial_counters[key]
    if ed_pool.shm_active:
        assert counters["parallel.shm_segments"] > 0
        assert counters["parallel.shm_bytes"] > 0
    assert serial_counters["parallel.shm_segments"] == 0


def test_metric_schema_invariant_across_worker_counts(dataset, plan, ed_pool):
    serial, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    sharded, _ = _run(
        StreamingEngine, dataset, plan, "I-PES", workers=ed_pool.size, pool=ed_pool
    )
    serial_metrics = serial.details["metrics"]
    sharded_metrics = sharded.details["metrics"]
    assert set(serial_metrics["counters"]) == set(sharded_metrics["counters"])
    assert set(serial_metrics["gauges"]) == set(sharded_metrics["gauges"])
    assert set(serial_metrics["phases"]) == set(sharded_metrics["phases"])


# ----------------------------------------------------------------------
# Degradation: a fleet that cannot start changes nothing but a counter
# ----------------------------------------------------------------------
def test_pool_startup_failure_degrades_in_process(dataset, plan, monkeypatch):
    serial, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    monkeypatch.setattr(
        "repro.parallel.pool.WorkerPool.create",
        classmethod(lambda cls, *args, **kwargs: None),
    )
    degraded, _ = _run(StreamingEngine, dataset, plan, "I-PES", workers=4)
    assert _comparable(degraded) == _comparable(serial)
    counters = degraded.details["metrics"]["counters"]
    assert counters["parallel.fallbacks"] == 1
    assert counters["parallel.rounds_sharded"] == 0
    assert degraded.details["metrics"]["gauges"]["parallel.workers"] == 1.0


def test_closed_pool_is_bypassed(dataset, plan):
    pool = WorkerPool.create(2, _build_matcher("ED"), min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    pool.close()
    serial, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    bypassed, _ = _run(
        StreamingEngine, dataset, plan, "I-PES", workers=2, pool=pool
    )
    assert _comparable(bypassed) == _comparable(serial)
    assert bypassed.details["metrics"]["counters"]["parallel.rounds_sharded"] == 0


# ----------------------------------------------------------------------
# Composition: faults stay serial, checkpoints resume across fleets
# ----------------------------------------------------------------------
def test_faulty_matcher_never_shards(dataset):
    def run(workers):
        with ERSession(
            dataset,
            systems=("I-PES",),
            matcher="ED",
            n_increments=8,
            rate=5.0,
            budget=BUDGET,
            faults=7,
            workers=workers,
        ) as session:
            return session.run()

    serial = run(1)
    parallel = run(4)
    assert _comparable(parallel) == _comparable(serial)
    counters = parallel.details["metrics"]["counters"]
    assert counters["parallel.rounds_sharded"] == 0
    assert counters["parallel.fallbacks"] == 0


def test_resume_crosses_worker_counts(dataset, plan, ed_pool):
    """A checkpoint taken serially resumes bit-identically on a fleet."""
    engine = StreamingEngine(
        _build_matcher("ED"),
        budget=BUDGET,
        resilience=ResilienceConfig(checkpoint_every=1.0, crash_at=4.0),
    )
    with pytest.raises(SimulatedCrash) as exc:
        engine.run(_build_system("I-PES", dataset), plan, dataset.ground_truth)
    checkpoint = exc.value.checkpoint
    assert checkpoint is not None

    resumed = StreamingEngine(
        _build_matcher("ED"), budget=BUDGET, workers=ed_pool.size, pool=ed_pool
    ).run(
        _build_system("I-PES", dataset),
        plan,
        dataset.ground_truth,
        resume_from=checkpoint,
    )
    uninterrupted, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    assert resumed.duplicates == uninterrupted.duplicates
    assert resumed.clock_end == uninterrupted.clock_end
    assert resumed.final_pc == uninterrupted.final_pc


# ----------------------------------------------------------------------
# Tier B: fanned-out comparison cells collate exactly like the serial loop
# ----------------------------------------------------------------------
def test_run_cells_parallel_collation_matches_serial():
    config = ExperimentConfig(
        dataset_name="dblp_acm",
        systems=("I-PES", "I-BASE"),
        matcher="JS",
        scale=0.2,
        n_increments=8,
        rate=5.0,
        budget=5.0,
    )
    serial = run_cells(config, config.systems, workers=1)
    fanned = run_cells(config, config.systems, workers=2)
    assert [_comparable(r) for r in fanned] == [_comparable(r) for r in serial]
