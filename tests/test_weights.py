"""Tests for meta-blocking weighting schemes."""

from __future__ import annotations

import pytest

from repro.blocking.blocks import BlockCollection
from repro.metablocking.weights import (
    ARCSScheme,
    CommonBlocksScheme,
    EnhancedCommonBlocksScheme,
    JaccardScheme,
    make_scheme,
)

from tests.conftest import make_profile


@pytest.fixture
def collection() -> BlockCollection:
    collection = BlockCollection(max_block_size=None)
    collection.add_profile(make_profile(0, "alpha beta gamma"))
    collection.add_profile(make_profile(1, "alpha beta delta"))
    collection.add_profile(make_profile(2, "alpha zeta"))
    collection.add_profile(make_profile(3, "omega"))
    return collection


class TestCBS:
    def test_counts_common_blocks(self, collection):
        assert CommonBlocksScheme().weight(collection, 0, 1) == 2.0
        assert CommonBlocksScheme().weight(collection, 0, 2) == 1.0
        assert CommonBlocksScheme().weight(collection, 0, 3) == 0.0

    def test_symmetry(self, collection):
        scheme = CommonBlocksScheme()
        assert scheme.weight(collection, 0, 1) == scheme.weight(collection, 1, 0)


class TestECBS:
    def test_zero_for_no_common_blocks(self, collection):
        assert EnhancedCommonBlocksScheme().weight(collection, 0, 3) == 0.0

    def test_rarity_boost(self, collection):
        """Profiles in fewer blocks give stronger evidence per common block."""
        scheme = EnhancedCommonBlocksScheme()
        # pairs (0,2) and (1,2) share exactly one block each with p2;
        # p0 and p1 sit in the same number of blocks, so weights tie
        assert scheme.weight(collection, 0, 2) == pytest.approx(
            scheme.weight(collection, 1, 2)
        )
        # but an entity in fewer blocks (p3 vs p0) would weigh more per block
        collection.add_profile(make_profile(4, "omega"))
        weight_rare = scheme.weight(collection, 3, 4)  # both in 1 block
        collection.add_profile(make_profile(5, "alpha beta gamma delta zeta omega"))
        weight_busy = scheme.weight(collection, 3, 5)  # p5 in many blocks
        assert weight_rare > weight_busy

    def test_positive_when_common(self, collection):
        assert EnhancedCommonBlocksScheme().weight(collection, 0, 1) > 0


class TestJaccardScheme:
    def test_value(self, collection):
        # B(0)={alpha,beta,gamma}, B(1)={alpha,beta,delta} → 2/4
        assert JaccardScheme().weight(collection, 0, 1) == pytest.approx(0.5)

    def test_bounds(self, collection):
        for x in range(4):
            for y in range(x + 1, 4):
                assert 0.0 <= JaccardScheme().weight(collection, x, y) <= 1.0


class TestARCS:
    def test_small_blocks_weigh_more(self, collection):
        scheme = ARCSScheme()
        # 'gamma' block has 1 member → no comparisons; 'alpha' has 3
        weight_alpha_pair = scheme.weight(collection, 0, 2)
        assert weight_alpha_pair > 0
        # pair sharing the rarer 'beta' block (2 members) outweighs 'alpha'-only
        weight_beta_pair = scheme.weight(collection, 0, 1)
        assert weight_beta_pair > weight_alpha_pair

    def test_zero_when_disjoint(self, collection):
        assert ARCSScheme().weight(collection, 0, 3) == 0.0


class TestMakeScheme:
    @pytest.mark.parametrize("name", ["cbs", "CBS", "ecbs", "js", "arcs"])
    def test_known_names(self, name):
        assert make_scheme(name).name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheme("nope")
