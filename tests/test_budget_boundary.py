"""Regression tests: no comparison finishing past the budget is credited.

The engines treat the virtual budget as a hard deadline.  A comparison whose
cost would push the clock beyond the budget must be neither executed nor
recorded on the progress curve; one finishing *exactly* at the budget counts.
These tests pin that boundary with a scripted system and a unit-cost matcher.
"""

from __future__ import annotations

import pytest

from repro.core.increments import Increment, make_stream_plan
from repro.core.dataset import GroundTruth
from repro.core.profile import EntityProfile
from repro.matching.matcher import CostModel, Matcher
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine
from repro.streaming.system import EmitResult, ERSystem, PipelineStats

ENGINES = (StreamingEngine, PipelinedStreamingEngine)


class UnitCostMatcher(Matcher):
    """Every comparison matches and costs exactly one virtual second."""

    name = "unit"

    def __init__(self) -> None:
        super().__init__(threshold=0.5, cost_model=CostModel(base=1.0, per_unit=0.0))

    def similarity(self, profile_x, profile_y) -> float:
        return 1.0

    def work_units(self, profile_x, profile_y) -> float:
        return 0.0


class ScriptedSystem(ERSystem):
    """Emits a fixed list of pairs in one zero-cost round."""

    name = "scripted"

    def __init__(self, pairs: list[tuple[int, int]]) -> None:
        self._pairs: list[tuple[int, int]] | None = list(pairs)
        self._profiles = {
            pid: EntityProfile(pid, {"a": f"p{pid}"})
            for pair in pairs
            for pid in pair
        }

    def ingest(self, increment: Increment) -> float:
        return 0.0

    def emit(self, stats: PipelineStats) -> EmitResult:
        if self._pairs is None:
            return EmitResult(batch=(), cost=0.0)
        batch, self._pairs = tuple(self._pairs), None
        return EmitResult(batch=batch, cost=0.0)

    def profile(self, pid: int) -> EntityProfile:
        return self._profiles[pid]


def _run(engine_factory, pairs, budget):
    plan = make_stream_plan([Increment(0, ())], rate=None)
    system = ScriptedSystem(pairs)
    matcher = UnitCostMatcher()
    engine = engine_factory(matcher, budget=budget)
    result = engine.run(system, plan, GroundTruth(pairs))
    return result, matcher


@pytest.mark.parametrize("engine_factory", ENGINES)
class TestBudgetBoundary:
    PAIRS = [(0, 1), (2, 3), (4, 5)]

    def test_post_budget_comparison_not_credited(self, engine_factory):
        """With budget 2.5, the third unit-cost comparison would finish at
        t=3.0 — past the deadline — and must not be executed or recorded."""
        result, matcher = _run(engine_factory, self.PAIRS, budget=2.5)
        assert result.comparisons_executed == 2
        assert matcher.comparisons_executed == 2
        assert result.curve.final_pc == pytest.approx(2 / 3)
        assert result.clock_end == 2.5
        counters = result.details["metrics"]["counters"]
        assert counters["engine.comparisons_cut_by_deadline"] == 1

    def test_curve_pinned_at_exact_budget_exhaustion(self, engine_factory):
        """A comparison finishing exactly at the budget still counts, and no
        curve point may lie beyond the budget."""
        result, _ = _run(engine_factory, self.PAIRS, budget=3.0)
        assert result.comparisons_executed == 3
        assert result.curve.final_pc == 1.0
        assert result.clock_end == 3.0
        assert all(point.time <= 3.0 for point in result.curve.points)
        assert result.curve.pc_at_time(3.0) == 1.0

    def test_no_curve_point_beyond_budget(self, engine_factory):
        for budget in (0.5, 1.0, 1.5, 2.0, 2.5):
            result, _ = _run(engine_factory, self.PAIRS, budget=budget)
            assert all(point.time <= budget for point in result.curve.points)
            assert result.comparisons_executed == int(budget)

    def test_match_phase_charges_cutoff_time(self, engine_factory):
        """The time between the last credited comparison and the deadline is
        charged to the match phase as cut-off work."""
        result, _ = _run(engine_factory, self.PAIRS, budget=2.5)
        match_virtual = result.details["metrics"]["phases"]["match"]["virtual_s"]
        assert match_virtual == pytest.approx(2.5)


@pytest.mark.parametrize("engine_factory", ENGINES)
def test_real_system_curve_never_exceeds_budget(engine_factory, small_dblp_acm):
    """End-to-end: on a real dataset with a tight budget, every credited
    curve point lies within the budget."""
    from repro.core.increments import split_into_increments
    from repro.evaluation.experiments import make_matcher, make_system

    plan = make_stream_plan(split_into_increments(small_dblp_acm, 6, seed=0), rate=None)
    budget = 0.05
    engine = engine_factory(make_matcher("JS"), budget=budget)
    result = engine.run(make_system("I-PCS", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    assert not result.work_exhausted
    assert result.clock_end <= budget
    assert all(point.time <= budget for point in result.curve.points)
    assert result.comparisons_executed == result.details["metrics"]["counters"].get(
        "engine.comparisons_executed", 0
    )
