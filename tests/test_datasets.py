"""Tests for the synthetic dataset generators and registry."""

from __future__ import annotations

import pytest

from repro.core.dataset import ERKind
from repro.datasets.bibliographic import generate_dblp_acm
from repro.datasets.census import generate_census
from repro.datasets.dbpedia import generate_dbpedia
from repro.datasets.generators import Corruptor, synthesize_vocabulary
from repro.datasets.movies import generate_movies
from repro.datasets.registry import available_datasets, load_dataset

import random


class TestCorruptor:
    def _corruptor(self, seed=1):
        return Corruptor(random.Random(seed))

    def test_typo_changes_string(self):
        corruptor = self._corruptor()
        value = "abcdefgh"
        results = {corruptor.typo(value) for _ in range(20)}
        assert any(result != value for result in results)

    def test_typo_short_string_unchanged(self):
        assert self._corruptor().typo("a") == "a"

    def test_drop_token(self):
        corruptor = self._corruptor()
        assert len(corruptor.drop_token("one two three").split()) == 2
        assert corruptor.drop_token("single") == "single"

    def test_abbreviate_token(self):
        corruptor = self._corruptor()
        result = corruptor.abbreviate_token("alpha beta")
        assert result in ("a beta", "alpha b")

    def test_deterministic_given_seed(self):
        a = Corruptor(random.Random(7))
        b = Corruptor(random.Random(7))
        value = "the quick brown fox"
        assert [a.corrupt(value) for _ in range(10)] == [b.corrupt(value) for _ in range(10)]


class TestSynthesizeVocabulary:
    def test_count_and_uniqueness(self):
        words = synthesize_vocabulary(random.Random(1), 100)
        assert len(words) == 100
        assert len(set(words)) == 100

    def test_deterministic(self):
        a = synthesize_vocabulary(random.Random(5), 50)
        b = synthesize_vocabulary(random.Random(5), 50)
        assert a == b

    def test_words_are_tokenizable(self):
        for word in synthesize_vocabulary(random.Random(2), 20):
            assert word.isalpha()
            assert len(word) >= 2


class TestGenerators:
    def test_dblp_acm_shape(self):
        dataset = generate_dblp_acm(size_dblp=100, size_acm=80, seed=1)
        assert dataset.kind is ERKind.CLEAN_CLEAN
        assert dataset.source_sizes() == {0: 100, 1: 80}
        assert 60 <= len(dataset.ground_truth) <= 80

    def test_dblp_acm_validation(self):
        with pytest.raises(ValueError):
            generate_dblp_acm(size_dblp=10, size_acm=20)

    def test_movies_shape(self):
        dataset = generate_movies(size_source0=120, size_source1=100, seed=2)
        assert dataset.kind is ERKind.CLEAN_CLEAN
        assert len(dataset) == 220
        assert len(dataset.ground_truth) > 80

    def test_census_shape(self):
        dataset = generate_census(n_profiles=200, seed=3)
        assert dataset.kind is ERKind.DIRTY
        assert len(dataset) == 200
        assert len(dataset.ground_truth) > 50  # multi-member clusters → many pairs

    def test_census_validation(self):
        with pytest.raises(ValueError):
            generate_census(n_profiles=1)

    def test_dbpedia_shape(self):
        dataset = generate_dbpedia(size_source0=100, size_source1=150, n_matches=60, seed=4)
        assert dataset.source_sizes() == {0: 100, 1: 150}
        assert len(dataset.ground_truth) == 60

    def test_dbpedia_validation(self):
        with pytest.raises(ValueError):
            generate_dbpedia(size_source0=10, size_source1=10, n_matches=20)

    def test_matches_reference_existing_profiles(self):
        for dataset in (
            generate_dblp_acm(size_dblp=50, size_acm=40),
            generate_movies(size_source0=50, size_source1=40),
            generate_census(n_profiles=80),
            generate_dbpedia(size_source0=50, size_source1=60, n_matches=30),
        ):
            for pid_x, pid_y in dataset.ground_truth:
                assert dataset.get(pid_x) is not None
                assert dataset.get(pid_y) is not None

    def test_clean_clean_matches_are_cross_source(self):
        dataset = generate_movies(size_source0=60, size_source1=50)
        for pid_x, pid_y in dataset.ground_truth:
            assert dataset[pid_x].source != dataset[pid_y].source

    def test_matches_share_tokens(self):
        """Ground-truth pairs must be discoverable by token blocking."""
        dataset = generate_dblp_acm(size_dblp=80, size_acm=70)
        sharing = sum(
            1
            for x, y in dataset.ground_truth
            if dataset[x].tokens() & dataset[y].tokens()
        )
        assert sharing / len(dataset.ground_truth) > 0.95

    def test_generators_deterministic(self):
        a = generate_census(n_profiles=100, seed=9)
        b = generate_census(n_profiles=100, seed=9)
        assert [p.pid for p in a] == [p.pid for p in b]
        assert [tuple(p.values()) for p in a] == [tuple(p.values()) for p in b]
        assert set(a.ground_truth) == set(b.ground_truth)

    def test_dbpedia_has_long_profiles(self):
        dataset = generate_dbpedia(size_source0=100, size_source1=150, n_matches=50)
        lengths = [p.text_length() for p in dataset]
        assert max(lengths) > 200  # long abstracts exist
        assert min(lengths) < 100  # alongside short profiles


class TestRegistry:
    def test_available(self):
        assert available_datasets() == ["census_2m", "dblp_acm", "dbpedia", "movies"]

    @pytest.mark.parametrize("name", ["dblp_acm", "movies", "census_2m", "dbpedia"])
    def test_load_each(self, name):
        dataset = load_dataset(name, scale=0.05)
        assert len(dataset) > 0
        assert dataset.name == name

    def test_scale_changes_size(self):
        small = load_dataset("census_2m", scale=0.1)
        large = load_dataset("census_2m", scale=0.3)
        assert len(large) > len(small)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("movies", scale=0.0)

    def test_seed_override(self):
        a = load_dataset("dblp_acm", scale=0.1, seed=1)
        b = load_dataset("dblp_acm", scale=0.1, seed=2)
        assert [tuple(p.values()) for p in a] != [tuple(p.values()) for p in b]
