"""Tests for the meta-blocking block graph used by batch PPS."""

from __future__ import annotations

from repro.blocking.blocks import BlockCollection
from repro.metablocking.block_graph import BlockGraph

from tests.conftest import make_profile


def _collection() -> BlockCollection:
    collection = BlockCollection(max_block_size=None)
    collection.add_profile(make_profile(0, "alpha beta"))
    collection.add_profile(make_profile(1, "alpha beta"))
    collection.add_profile(make_profile(2, "alpha"))
    collection.add_profile(make_profile(3, "solo"))
    return collection


class TestBlockGraph:
    def test_edges_for_coblocked_pairs(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        assert set(graph.edges) == {(0, 1), (0, 2), (1, 2)}

    def test_edge_weights_are_cbs(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        assert graph.edges[(0, 1)] == 2.0
        assert graph.edges[(0, 2)] == 1.0

    def test_valid_pair_filter(self):
        graph = BlockGraph(_collection(), lambda x, y: (x, y) != (0, 1))
        assert (0, 1) not in graph.edges

    def test_duplication_likelihood(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        # p0 edges: (0,1)=2, (0,2)=1 → avg 1.5 ; p2 edges: 1,1 → avg 1.0
        assert graph.duplication_likelihood(0) == 1.5
        assert graph.duplication_likelihood(2) == 1.0
        assert graph.duplication_likelihood(3) == 0.0

    def test_neighbors_sorted_by_weight(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        neighbors = graph.neighbors(0)
        assert neighbors[0] == (1, 2.0)

    def test_edge_enumeration_counter(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        # 'alpha' block of size 3 → 3 pairs, 'beta' block of size 2 → 1 pair
        assert graph.edge_enumerations == 4

    def test_isolated_profiles_absent(self):
        graph = BlockGraph(_collection(), lambda x, y: True)
        assert 3 not in graph.profiles()

    def test_len_counts_edges(self):
        assert len(BlockGraph(_collection(), lambda x, y: True)) == 3
