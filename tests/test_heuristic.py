"""Tests for the strategy-selection heuristic (future work of the paper)."""

from __future__ import annotations

from repro.datasets.registry import load_dataset
from repro.pier.heuristic import (
    choose_strategy,
    make_chosen_strategy,
    profile_sample_stats,
)
from repro.pier.ipbs import IPBS
from repro.pier.ipes import IPES

from tests.conftest import make_profile


class TestProfileSampleStats:
    def test_empty_sample(self):
        stats = profile_sample_stats([])
        assert stats.sample_size == 0
        assert stats.length_cv == 0.0

    def test_uniform_lengths_low_cv(self):
        profiles = [make_profile(i, "aaaa bbbb") for i in range(20)]
        stats = profile_sample_stats(profiles)
        assert stats.length_cv == 0.0

    def test_skewed_lengths_high_cv(self):
        profiles = [make_profile(0, "ab")] + [
            make_profile(i, "word " * 100) for i in range(1, 4)
        ]
        assert profile_sample_stats(profiles).length_cv > 0.3

    def test_schema_diversity(self):
        fixed = [make_profile(i, "val", attr="same") for i in range(50)]
        varied = [make_profile(i, "val", attr=f"attr{i}") for i in range(50)]
        assert (
            profile_sample_stats(varied).schema_diversity
            > profile_sample_stats(fixed).schema_diversity
        )


class TestChooseStrategy:
    def test_census_looks_relational(self):
        dataset = load_dataset("census_2m", scale=0.1)
        assert choose_strategy(dataset.profiles[:200]) == "I-PBS"

    def test_dbpedia_looks_heterogeneous(self):
        dataset = load_dataset("dbpedia", scale=0.1)
        assert choose_strategy(dataset.profiles[:200]) == "I-PES"

    def test_movies_defaults_to_ipes(self):
        dataset = load_dataset("movies", scale=0.1)
        assert choose_strategy(dataset.profiles[:200]) == "I-PES"

    def test_make_chosen_strategy_types(self):
        census = load_dataset("census_2m", scale=0.1)
        dbpedia = load_dataset("dbpedia", scale=0.1)
        assert isinstance(make_chosen_strategy(census.profiles[:200]), IPBS)
        assert isinstance(make_chosen_strategy(dbpedia.profiles[:200]), IPES)


class TestFactoryIntegration:
    def test_i_auto(self):
        from repro.evaluation.experiments import make_system

        census = load_dataset("census_2m", scale=0.1)
        system = make_system("I-AUTO", census)
        assert system.name == "I-AUTO[I-PBS]"
        dbpedia = load_dataset("dbpedia", scale=0.1)
        system = make_system("I-AUTO", dbpedia)
        assert system.name == "I-AUTO[I-PES]"
