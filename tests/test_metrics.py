"""Tests for blocking/ER quality metrics."""

from __future__ import annotations

import pytest

from repro.blocking.blocks import BlockCollection
from repro.core.dataset import GroundTruth
from repro.evaluation.metrics import (
    blocking_pair_completeness,
    f_measure,
    pair_completeness,
    pairs_quality,
    reduction_ratio,
)

from tests.conftest import make_profile


@pytest.fixture
def truth() -> GroundTruth:
    return GroundTruth([(0, 1), (2, 3)])


class TestPairMetrics:
    def test_pair_completeness(self, truth):
        assert pair_completeness([(1, 0)], truth) == 0.5

    def test_pairs_quality(self, truth):
        assert pairs_quality([(0, 1), (0, 2), (0, 3)], truth) == pytest.approx(1 / 3)

    def test_pairs_quality_empty(self, truth):
        assert pairs_quality([], truth) == 0.0

    def test_reduction_ratio(self):
        assert reduction_ratio(10, 100) == pytest.approx(0.9)
        assert reduction_ratio(0, 0) == 0.0
        assert reduction_ratio(200, 100) == 0.0  # clamped

    def test_f_measure(self):
        assert f_measure(0.5, 0.5) == pytest.approx(0.5)
        assert f_measure(0.0, 0.0) == 0.0
        assert f_measure(1.0, 0.5) == pytest.approx(2 / 3)


class TestBlockingPC:
    def test_ceiling_reflects_coblocking(self, truth):
        collection = BlockCollection()
        collection.add_profile(make_profile(0, "alpha"))
        collection.add_profile(make_profile(1, "alpha"))
        collection.add_profile(make_profile(2, "beta"))
        collection.add_profile(make_profile(3, "gamma"))  # (2,3) not co-blocked
        assert blocking_pair_completeness(collection, truth) == 0.5

    def test_empty_truth(self):
        assert blocking_pair_completeness(BlockCollection(), GroundTruth()) == 1.0
