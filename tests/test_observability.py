"""Tests for the observability layer and the engine metrics it exposes."""

from __future__ import annotations

import json

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher, make_system
from repro.evaluation.io import run_result_to_dict
from repro.observability.metrics import SCHEMA_VERSION, MetricsRegistry, RoundLog
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.count("a")
        metrics.count("a", 2)
        metrics.count("b", 0.5)
        assert metrics.counter("a") == 3
        assert metrics.counter("b") == 0.5
        assert metrics.counter("missing") == 0

    def test_gauges_last_value_wins(self):
        metrics = MetricsRegistry()
        metrics.gauge("depth", 3)
        metrics.gauge("depth", 7)
        assert metrics.gauge_value("depth") == 7

    def test_phase_timer_accumulates_virtual_and_wall(self):
        metrics = MetricsRegistry()
        with metrics.time_phase("match") as timer:
            timer.virtual += 1.5
        with metrics.time_phase("match") as timer:
            timer.virtual += 0.5
        totals = metrics.phase("match")
        assert totals.virtual_s == pytest.approx(2.0)
        assert totals.count == 2
        assert totals.wall_s >= 0.0

    def test_snapshot_schema(self):
        metrics = MetricsRegistry()
        metrics.count("x")
        metrics.gauge("g", 1.0)
        with metrics.time_phase("p") as timer:
            timer.virtual += 1.0
        metrics.record_round(round=1, clock=0.5, backlog=0)
        snap = metrics.snapshot()
        assert snap["schema_version"] == SCHEMA_VERSION
        assert set(snap) == {"schema_version", "counters", "gauges", "phases", "rounds"}
        assert snap["phases"]["p"]["virtual_s"] == 1.0
        assert "wall_s" in snap["phases"]["p"]
        assert snap["rounds"]["samples"] == [{"round": 1, "clock": 0.5, "backlog": 0}]
        json.dumps(snap)  # must be JSON-serializable

    def test_snapshot_without_wall_is_deterministic(self):
        def build():
            metrics = MetricsRegistry()
            with metrics.time_phase("p") as timer:
                timer.virtual += 2.0
            metrics.count("c", 3)
            return metrics.snapshot(include_wall=False)

        assert build() == build()
        assert "wall_s" not in build()["phases"]["p"]


class TestRoundLog:
    def test_keeps_everything_under_cap(self):
        log = RoundLog(max_samples=8)
        for i in range(8):
            log.offer({"round": i})
        assert [s["round"] for s in log.samples] == list(range(8))
        assert log.stride == 1

    def test_stride_doubles_beyond_cap(self):
        log = RoundLog(max_samples=8)
        for i in range(1000):
            log.offer({"round": i})
        assert len(log.samples) <= 8
        assert log.offered == 1000
        rounds = [s["round"] for s in log.samples]
        # Uniform coverage: consecutive retained samples are stride apart.
        assert rounds == sorted(rounds)
        assert all(r % log.stride == 0 for r in rounds)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundLog(max_samples=1)


ENGINES = (StreamingEngine, PipelinedStreamingEngine)
PIER_SYSTEMS = ("I-PCS", "I-PBS", "I-PES")


@pytest.mark.parametrize("system_name", PIER_SYSTEMS)
@pytest.mark.parametrize("engine_factory", ENGINES)
def test_run_attaches_metrics_snapshot(system_name, engine_factory, small_dblp_acm):
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 8, seed=0), rate=5.0)
    matcher = make_matcher("JS")
    engine = engine_factory(matcher, budget=60.0)
    result = engine.run(make_system(system_name, small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    snap = result.details["metrics"]
    assert snap["schema_version"] == SCHEMA_VERSION
    counters = snap["counters"]
    assert counters["engine.comparisons_executed"] == result.comparisons_executed
    assert counters["matcher.evaluations"] == matcher.comparisons_executed
    assert counters["engine.increments_ingested"] == result.increments_ingested
    # Phase timers cover the emission/matching work of the run.
    assert snap["phases"]["match"]["virtual_s"] == pytest.approx(matcher.total_cost)
    assert snap["phases"]["ingest"]["virtual_s"] > 0
    # Per-round samples carry the adaptive K and queue depth gauges.
    samples = snap["rounds"]["samples"]
    assert samples, "expected at least one round sample"
    assert all("k" in s and "queue_depth" in s and "backlog" in s for s in samples)


def test_ipbs_reports_bloom_gauges(small_dblp_acm):
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 5, seed=0), rate=5.0)
    engine = StreamingEngine(make_matcher("JS"), budget=60.0)
    result = engine.run(make_system("I-PBS", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    samples = result.details["metrics"]["rounds"]["samples"]
    assert all("bloom_slices" in s and "bloom_items" in s for s in samples)
    assert samples[-1]["bloom_slices"] >= 1


def test_json_export_includes_metrics(small_dblp_acm):
    plan = make_stream_plan(split_into_increments(small_dblp_acm, 4, seed=0), rate=None)
    engine = StreamingEngine(make_matcher("JS"), budget=30.0)
    result = engine.run(make_system("I-PES", small_dblp_acm), plan,
                        small_dblp_acm.ground_truth)
    payload = run_result_to_dict(result)
    assert payload["details"]["metrics"]["schema_version"] == SCHEMA_VERSION
    json.dumps(payload)  # whole export must remain JSON-serializable
