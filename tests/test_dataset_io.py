"""Tests for dataset file I/O (CSV / JSON lines / ground truth)."""

from __future__ import annotations

import io

import pytest

from repro.core.dataset import ERKind, GroundTruth
from repro.datasets.io import (
    dataset_from_csv,
    dataset_from_jsonl,
    dataset_to_jsonl,
    ground_truth_from_csv,
    ground_truth_to_csv,
)
from repro.datasets.registry import load_dataset


class TestCSV:
    def test_basic_load(self):
        csv_text = "pid,source,title,year\n0,0,The Matrix,1999\n1,1,Matrix,\n"
        dataset = dataset_from_csv(io.StringIO(csv_text), kind=ERKind.CLEAN_CLEAN)
        assert len(dataset) == 2
        assert dataset[0].source == 0
        assert dataset[1].source == 1
        # empty year cell dropped
        assert {a.name for a in dataset[1].attributes} == {"title"}

    def test_missing_id_column(self):
        with pytest.raises(ValueError):
            dataset_from_csv(io.StringIO("a,b\n1,2\n"))

    def test_custom_columns(self):
        csv_text = "record_id,origin,name\n5,1,Alice\n"
        dataset = dataset_from_csv(
            io.StringIO(csv_text), id_column="record_id", source_column="origin"
        )
        assert dataset[5].source == 1

    def test_source_defaults_to_zero(self):
        dataset = dataset_from_csv(io.StringIO("pid,name\n0,Bob\n"))
        assert dataset[0].source == 0

    def test_ground_truth_attached(self):
        truth = GroundTruth([(0, 1)])
        dataset = dataset_from_csv(
            io.StringIO("pid,name\n0,a\n1,a\n"), ground_truth=truth
        )
        assert len(dataset.ground_truth) == 1


class TestJSONL:
    def test_basic_load(self):
        jsonl = '{"pid": 0, "title": "Heat", "year": 1995}\n{"pid": 1, "source": 1, "name": "Heat"}\n'
        dataset = dataset_from_jsonl(io.StringIO(jsonl), kind=ERKind.CLEAN_CLEAN)
        assert len(dataset) == 2
        assert dataset[0].text() == "Heat 1995"  # numbers stringified
        assert dataset[1].source == 1

    def test_heterogeneous_keys(self):
        jsonl = '{"pid": 0, "a": "x"}\n{"pid": 1, "b": "y", "c": "z"}\n'
        dataset = dataset_from_jsonl(io.StringIO(jsonl))
        assert {a.name for a in dataset[1].attributes} == {"b", "c"}

    def test_null_values_dropped(self):
        dataset = dataset_from_jsonl(io.StringIO('{"pid": 0, "a": null, "b": "y"}\n'))
        assert {a.name for a in dataset[0].attributes} == {"b"}

    def test_missing_pid(self):
        with pytest.raises(ValueError):
            dataset_from_jsonl(io.StringIO('{"a": "x"}\n'))

    def test_blank_lines_skipped(self):
        dataset = dataset_from_jsonl(io.StringIO('\n{"pid": 0, "a": "x"}\n\n'))
        assert len(dataset) == 1

    def test_round_trip(self):
        original = load_dataset("dblp_acm", scale=0.05)
        buffer = io.StringIO()
        dataset_to_jsonl(original, buffer)
        buffer.seek(0)
        loaded = dataset_from_jsonl(
            buffer, kind=original.kind, ground_truth=original.ground_truth
        )
        assert len(loaded) == len(original)
        for profile in original:
            assert loaded[profile.pid].tokens() == profile.tokens()
            assert loaded[profile.pid].source == profile.source

    def test_round_trip_to_path(self, tmp_path):
        original = load_dataset("census_2m", scale=0.05)
        path = tmp_path / "census.jsonl"
        dataset_to_jsonl(original, str(path))
        loaded = dataset_from_jsonl(str(path))
        assert len(loaded) == len(original)


class TestGroundTruthCSV:
    def test_round_trip(self, tmp_path):
        truth = GroundTruth([(0, 1), (2, 3)])
        path = tmp_path / "truth.csv"
        ground_truth_to_csv(truth, str(path))
        loaded = ground_truth_from_csv(str(path))
        assert set(loaded) == set(truth)

    def test_header_tolerated(self):
        loaded = ground_truth_from_csv(io.StringIO("pid_left,pid_right\n1,2\n3,4\n"))
        assert len(loaded) == 2

    def test_malformed_rows_skipped(self):
        loaded = ground_truth_from_csv(io.StringIO("1,2\nbroken\n,\n3,4\n"))
        assert len(loaded) == 2


class TestEndToEndFromFiles:
    def test_resolve_loaded_dataset(self, tmp_path):
        """Full user journey: export → import → resolve."""
        from repro import resolve_stream

        original = load_dataset("dblp_acm", scale=0.1)
        data_path = tmp_path / "data.jsonl"
        truth_path = tmp_path / "truth.csv"
        dataset_to_jsonl(original, str(data_path))
        ground_truth_to_csv(original.ground_truth, str(truth_path))

        loaded = dataset_from_jsonl(
            str(data_path),
            kind=ERKind.CLEAN_CLEAN,
            ground_truth=ground_truth_from_csv(str(truth_path)),
        )
        result = resolve_stream(loaded, n_increments=5, budget=30.0)
        assert result.final_pc > 0.5
