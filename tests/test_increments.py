"""Tests for increment splitting and stream plans."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.increments import Increment, make_stream_plan, split_into_increments


class TestSplitIntoIncrements:
    def test_partition_is_exact(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 4, seed=1)
        pids = [p.pid for increment in increments for p in increment]
        assert sorted(pids) == [0, 1, 2, 3, 4, 5]

    def test_sizes_nearly_equal(self, small_census):
        increments = split_into_increments(small_census, 7)
        sizes = [len(increment) for increment in increments]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_for_seed(self, toy_dirty_dataset):
        a = split_into_increments(toy_dirty_dataset, 3, seed=42)
        b = split_into_increments(toy_dirty_dataset, 3, seed=42)
        assert [[p.pid for p in inc] for inc in a] == [[p.pid for p in inc] for inc in b]

    def test_seed_changes_order(self, small_census):
        a = split_into_increments(small_census, 5, seed=1)
        b = split_into_increments(small_census, 5, seed=2)
        assert [p.pid for p in a[0]] != [p.pid for p in b[0]]

    def test_no_shuffle_preserves_order(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2, shuffle=False)
        assert [p.pid for p in increments[0]] == [0, 1, 2]

    def test_more_increments_than_profiles(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 100)
        assert len(increments) == 6
        assert all(len(increment) == 1 for increment in increments)

    def test_invalid_count(self, toy_dirty_dataset):
        with pytest.raises(ValueError):
            split_into_increments(toy_dirty_dataset, 0)

    def test_indexes_are_sequential(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 3)
        assert [increment.index for increment in increments] == [0, 1, 2]

    @given(st.integers(min_value=1, max_value=20))
    def test_partition_property(self, n_increments):
        # construct a dataset inline to avoid fixture/hypothesis interaction
        from repro.core.dataset import Dataset, ERKind, GroundTruth
        from tests.conftest import make_profile

        profiles = [make_profile(i, f"token{i} shared") for i in range(13)]
        dataset = Dataset("d", profiles, GroundTruth(), ERKind.DIRTY)
        increments = split_into_increments(dataset, n_increments, seed=3)
        pids = sorted(p.pid for inc in increments for p in inc)
        assert pids == list(range(13))


class TestStreamPlan:
    def test_static_plan_all_at_start(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 3)
        plan = make_stream_plan(increments, rate=None)
        assert plan.arrival_times == (0.0, 0.0, 0.0)
        assert plan.rate is None

    def test_rate_spacing(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 3)
        plan = make_stream_plan(increments, rate=2.0)
        assert plan.arrival_times == (0.0, 0.5, 1.0)
        assert plan.last_arrival == 1.0

    def test_start_time_offset(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2)
        plan = make_stream_plan(increments, rate=1.0, start_time=5.0)
        assert plan.arrival_times == (5.0, 6.0)

    def test_invalid_rate(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2)
        with pytest.raises(ValueError):
            make_stream_plan(increments, rate=0.0)

    def test_total_profiles(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 4)
        plan = make_stream_plan(increments)
        assert plan.total_profiles == 6

    def test_misaligned_arrays_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError):
            StreamPlan(increments=(Increment(0, ()),), arrival_times=())

    def test_decreasing_times_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError):
            StreamPlan(
                increments=(Increment(0, ()), Increment(1, ())),
                arrival_times=(1.0, 0.5),
            )

    def test_iteration(self, toy_dirty_dataset):
        increments = split_into_increments(toy_dirty_dataset, 2)
        plan = make_stream_plan(increments, rate=1.0)
        entries = list(plan)
        assert entries[0][0] == 0.0
        assert entries[1][0] == 1.0

    def test_nan_time_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError, match="finite"):
            StreamPlan(increments=(Increment(0, ()),), arrival_times=(float("nan"),))

    def test_infinite_time_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError, match="finite"):
            StreamPlan(increments=(Increment(0, ()),), arrival_times=(float("inf"),))

    def test_negative_time_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError, match="negative"):
            StreamPlan(increments=(Increment(0, ()),), arrival_times=(-0.5,))

    def test_duplicate_increment_ids_rejected(self):
        from repro.core.increments import StreamPlan

        with pytest.raises(ValueError, match="unique"):
            StreamPlan(
                increments=(Increment(0, ()), Increment(0, ())),
                arrival_times=(0.0, 1.0),
            )

    def test_allow_redelivery_permits_duplicate_ids(self):
        from repro.core.increments import StreamPlan

        plan = StreamPlan(
            increments=(Increment(0, ()), Increment(0, ())),
            arrival_times=(0.0, 1.0),
            allow_redelivery=True,
        )
        assert len(plan) == 2


class TestIncrement:
    def test_is_empty(self):
        assert Increment(0, ()).is_empty
        assert len(Increment(0, ())) == 0
