"""Failure-injection and edge-case tests across the pipeline.

Streams in the wild misbehave: empty increments, bursts, duplicate pids,
profiles with no usable tokens, pathological values.  The pipeline must
degrade gracefully — never crash, never double-count.
"""

from __future__ import annotations

import pytest

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.increments import Increment, StreamPlan, make_stream_plan
from repro.core.profile import EntityProfile
from repro.evaluation.experiments import make_matcher, make_system
from repro.incremental.ibase import IBaseSystem
from repro.pier.base import PierSystem
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

from tests.conftest import make_profile

ALL_STRATEGIES = [lambda: PierSystem(IPES()), lambda: PierSystem(IPCS()),
                  lambda: PierSystem(IPBS()), IBaseSystem]


def _run(system, plan, truth, budget=50.0):
    engine = StreamingEngine(make_matcher("JS"), budget=budget)
    return engine.run(system, plan, truth)


class TestEmptyIncrements:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_empty_increments_interleaved(self, factory, toy_dirty_dataset):
        increments = [
            Increment(0, tuple(toy_dirty_dataset.profiles[:3])),
            Increment(1, ()),
            Increment(2, tuple(toy_dirty_dataset.profiles[3:])),
            Increment(3, ()),
        ]
        plan = make_stream_plan(increments, rate=5.0)
        result = _run(factory(), plan, toy_dirty_dataset.ground_truth)
        assert result.final_pc > 0.5

    def test_all_empty_stream(self):
        increments = [Increment(i, ()) for i in range(5)]
        plan = make_stream_plan(increments, rate=10.0)
        result = _run(PierSystem(IPES()), plan, GroundTruth())
        assert result.comparisons_executed == 0
        assert result.work_exhausted


class TestDegenerateProfiles:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_tokenless_profiles(self, factory):
        profiles = (
            EntityProfile(0, {"a": "!!! ???"}),       # no valid tokens
            EntityProfile(1, {}),                      # no attributes
            make_profile(2, "alpha beta"),
            make_profile(3, "alpha beta"),
        )
        plan = make_stream_plan([Increment(0, profiles)], rate=None)
        result = _run(factory(), plan, GroundTruth([(2, 3)]))
        assert result.final_pc == 1.0

    def test_single_profile_stream(self):
        plan = make_stream_plan([Increment(0, (make_profile(0, "solo"),))], rate=None)
        result = _run(PierSystem(IPES()), plan, GroundTruth())
        assert result.comparisons_executed == 0
        assert result.work_exhausted

    def test_very_long_value(self):
        long_text = "tok " * 2000
        profiles = (make_profile(0, long_text), make_profile(1, long_text))
        plan = make_stream_plan([Increment(0, profiles)], rate=None)
        result = _run(PierSystem(IPES()), plan, GroundTruth([(0, 1)]))
        # 'tok' block contains both, comparison executed
        assert result.final_pc == 1.0


class TestBurstyStreams:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_burst_then_silence(self, factory, small_dblp_acm):
        from repro.core.increments import split_into_increments

        increments = split_into_increments(small_dblp_acm, 20, seed=0)
        # 10 increments in one burst at t=0, then a long gap, then the rest
        times = tuple([0.0] * 10 + [50.0 + i for i in range(10)])
        plan = StreamPlan(increments=tuple(increments), arrival_times=times)
        result = _run(factory(), plan, small_dblp_acm.ground_truth, budget=120.0)
        assert result.increments_ingested == 20
        assert result.final_pc > 0.3

    def test_irregular_arrival_times(self, toy_dirty_dataset):
        from repro.core.increments import split_into_increments

        increments = split_into_increments(toy_dirty_dataset, 3, seed=0)
        plan = StreamPlan(
            increments=tuple(increments), arrival_times=(0.0, 0.001, 30.0)
        )
        result = _run(PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth)
        assert result.work_exhausted


class TestDuplicateArrivals:
    def test_duplicate_pid_raises_cleanly(self):
        system = PierSystem(IPES())
        system.ingest(Increment(0, (make_profile(0, "alpha"),)))
        with pytest.raises(ValueError):
            system.ingest(Increment(1, (make_profile(0, "alpha"),)))


class TestPipelinedStarvation:
    """The pipelined engine's step-3 starvation path: forced ingests under
    permanent back-pressure, idle-work exhaustion, and the budget clamp on
    ingests that cannot start before the deadline."""

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_forced_ingest_escapes_livelock(self, factory, toy_dirty_dataset):
        from repro.core.increments import split_into_increments

        system = factory()
        # Permanent back-pressure: the engine must force increments through
        # (step 3) instead of livelocking on a system that never turns ready.
        system.ready_for_ingest = lambda: False
        increments = split_into_increments(toy_dirty_dataset, 3, seed=0)
        plan = make_stream_plan(increments, rate=10.0)
        engine = PipelinedStreamingEngine(make_matcher("JS"), budget=50.0)
        result = engine.run(system, plan, toy_dirty_dataset.ground_truth)
        counters = result.details["metrics"]["counters"]
        assert counters["engine.forced_ingests"] == 3
        assert result.increments_ingested == 3
        assert result.work_exhausted
        assert result.final_pc > 0.5

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_on_idle_exhaustion_terminates(self, factory, toy_dirty_dataset):
        from repro.core.increments import split_into_increments

        increments = split_into_increments(toy_dirty_dataset, 2, seed=0)
        plan = make_stream_plan(increments, rate=100.0)  # stream over instantly
        engine = PipelinedStreamingEngine(make_matcher("JS"), budget=200.0)
        result = engine.run(factory(), plan, toy_dirty_dataset.ground_truth)
        # Generous budget: the system drains its queue, exhausts any idle
        # refill work, and the run ends work-exhausted inside the budget.
        assert result.work_exhausted
        assert result.clock_end < 200.0
        assert result.final_pc > 0.5

    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_ingest_past_budget_is_not_charged(self, factory, toy_dirty_dataset):
        from repro.core.increments import split_into_increments

        increments = split_into_increments(toy_dirty_dataset, 3, seed=0)
        # Last arrival far beyond the budget: the engine must stop at the
        # deadline instead of charging the ingest (and work derived from it).
        plan = StreamPlan(
            increments=tuple(increments), arrival_times=(0.0, 0.1, 500.0)
        )
        engine = PipelinedStreamingEngine(make_matcher("JS"), budget=2.0)
        result = engine.run(factory(), plan, toy_dirty_dataset.ground_truth)
        counters = result.details["metrics"]["counters"]
        gauges = result.details["metrics"]["gauges"]
        assert not result.work_exhausted
        assert result.clock_end == 2.0
        assert result.increments_ingested == 2
        assert counters["engine.ingests_cut_by_deadline"] == 1
        assert gauges["engine.ingest_clock_end"] <= 2.0


class TestClockSanity:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES)
    def test_clock_never_negative_and_bounded(self, factory, small_census):
        from repro.core.increments import split_into_increments

        increments = split_into_increments(small_census, 10, seed=0)
        plan = make_stream_plan(increments, rate=3.0)
        result = _run(factory(), plan, small_census.ground_truth, budget=20.0)
        assert 0.0 <= result.clock_end
        if not result.work_exhausted:
            assert result.clock_end <= 20.0 * 1.5  # one overshooting action max
