"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "I-PES"
        assert args.dataset == "dblp_acm"
        assert args.rate is None

    def test_compare_algorithm_list(self):
        args = build_parser().parse_args(["compare", "--algorithms", "I-PES", "I-BASE"])
        assert args.algorithms == ["I-PES", "I-BASE"]

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "MAGIC"])

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "nope"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "dblp_acm" in output
        assert "census_2m" in output

    def test_run_static(self, capsys):
        code = main(
            ["run", "--dataset", "dblp_acm", "--scale", "0.1",
             "--increments", "5", "--budget", "30"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "I-PES" in output
        assert "final PC" in output

    def test_run_with_exports(self, capsys, tmp_path):
        json_path = tmp_path / "result.json"
        csv_path = tmp_path / "curve.csv"
        code = main(
            ["run", "--dataset", "dblp_acm", "--scale", "0.1", "--increments", "5",
             "--budget", "30", "--json", str(json_path), "--csv", str(csv_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["system"] == "PIER[I-PES]"
        assert payload["curve"]
        header = csv_path.read_text().splitlines()[0]
        assert header == "time,comparisons,matches,pc"

    def test_run_with_metrics_export(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            ["run", "--dataset", "dblp_acm", "--scale", "0.1", "--increments", "5",
             "--budget", "30", "--rate", "5", "--metrics", str(metrics_path)]
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        assert {"schema_version", "counters", "gauges", "phases", "rounds"} <= set(snapshot)
        assert snapshot["counters"]["engine.comparisons_executed"] > 0
        assert "match" in snapshot["phases"]
        assert snapshot["rounds"]["samples"]

    def test_run_pipelined(self, capsys):
        code = main(
            ["run", "--dataset", "dblp_acm", "--scale", "0.1", "--increments", "5",
             "--budget", "30", "--rate", "8", "--pipelined"]
        )
        assert code == 0

    def test_compare(self, capsys):
        code = main(
            ["compare", "--dataset", "dblp_acm", "--scale", "0.1",
             "--increments", "5", "--budget", "30",
             "--algorithms", "I-PES", "I-BASE"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "I-PES" in output
        assert "I-BASE" in output
