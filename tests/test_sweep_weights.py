"""Bit-identity tests for the single-sweep weighting kernel.

The sweep path (:mod:`repro.metablocking.sweep`) must reproduce the legacy
per-pair weighting *exactly* — same candidates, same order, same float
weights — for all four schemes, on dirty and Clean-Clean collections, with
purged blocks and block ghosting in play, and independent of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.blocking.blocks import BlockCollection
from repro.blocking.cleaning import block_ghosting
from repro.core.dataset import Dataset, ERKind
from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import (
    WEIGHTING_SYSTEMS,
    make_matcher,
    make_system,
)
from repro.metablocking.sweep import partner_weights, sweep_weights
from repro.metablocking.weights import make_scheme
from repro.metablocking.wnp import incremental_wnp, sweep_wnp
from repro.pier.base import ComparisonGenerator
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

SCHEME_NAMES = ("cbs", "ecbs", "js", "arcs")


def _index(dataset: Dataset, max_block_size: int | None) -> BlockCollection:
    collection = BlockCollection(
        clean_clean=dataset.kind is ERKind.CLEAN_CLEAN, max_block_size=max_block_size
    )
    for profile in dataset.profiles:
        collection.add_profile(profile)
    return collection


def _legacy_candidates(collection, profile, beta):
    """Candidate pids exactly as the legacy generate path gathers them."""
    blocks = block_ghosting(list(collection.blocks_of_as_blocks(profile.pid)), beta)
    candidates: list[int] = []
    for block in blocks:
        if collection.clean_clean:
            partners = block.members(1 - profile.source)
        else:
            partners = tuple(block)
        candidates.extend(pid for pid in partners if pid != profile.pid)
    return candidates


@pytest.fixture(scope="module")
def dirty_collection(request):
    dataset = request.getfixturevalue("small_census")
    # small max_block_size forces purged blocks into the picture
    return dataset, _index(dataset, max_block_size=20)


@pytest.fixture(scope="module")
def cc_collection(request):
    dataset = request.getfixturevalue("small_dblp_acm")
    return dataset, _index(dataset, max_block_size=30)


class TestSweepBitIdentity:
    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_dirty_with_purged_blocks_and_ghosting(self, dirty_collection, scheme_name):
        dataset, collection = dirty_collection
        scheme = make_scheme(scheme_name)
        checked = 0
        for profile in dataset.profiles[:120]:
            legacy = incremental_wnp(
                collection,
                profile.pid,
                _legacy_candidates(collection, profile, beta=0.2),
                scheme,
            )
            swept = sweep_wnp(
                collection, profile.pid, lambda pid: True, scheme, beta=0.2
            )
            assert swept.kept == legacy.kept  # pairs, order, and exact floats
            assert swept.pruned == legacy.pruned
            assert swept.weighting_cost_units == legacy.weighting_cost_units
            checked += len(legacy.kept)
        assert checked > 0  # the fixture produced real candidate lists

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_clean_clean_with_source_hint(self, cc_collection, scheme_name):
        dataset, collection = cc_collection
        scheme = make_scheme(scheme_name)
        sources = {profile.pid: profile.source for profile in dataset.profiles}
        checked = 0
        for profile in dataset.profiles[:120]:
            valid = lambda pid, s=profile.source: sources[pid] != s
            legacy = incremental_wnp(
                collection,
                profile.pid,
                _legacy_candidates(collection, profile, beta=0.2),
                scheme,
            )
            swept = sweep_wnp(
                collection,
                profile.pid,
                valid,
                scheme,
                beta=0.2,
                source=profile.source,
            )
            assert swept.kept == legacy.kept
            assert swept.weighting_cost_units == legacy.weighting_cost_units
            checked += len(legacy.kept)
        assert checked > 0

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_generator_paths_identical(self, cc_collection, scheme_name):
        """ComparisonGenerator(per_pair=True/False) emit identical streams."""
        dataset, collection = cc_collection
        scheme = make_scheme(scheme_name)
        sweep_gen = ComparisonGenerator(beta=0.2, scheme=scheme)
        pair_gen = ComparisonGenerator(beta=0.2, scheme=scheme, per_pair=True)
        sources = {profile.pid: profile.source for profile in dataset.profiles}
        for profile in dataset.profiles[:80]:
            valid = lambda pid, s=profile.source: sources[pid] != s
            assert sweep_gen.generate(collection, profile, valid) == pair_gen.generate(
                collection, profile, valid
            )

    @pytest.mark.parametrize("scheme_name", SCHEME_NAMES)
    def test_partner_weights_matches_per_pair_calls(self, dirty_collection, scheme_name):
        dataset, collection = dirty_collection
        scheme = make_scheme(scheme_name)
        for profile in dataset.profiles[:60]:
            partners = list(
                dict.fromkeys(_legacy_candidates(collection, profile, beta=1.0))
            )
            # include a partner with no shared live block: weight must be 0.0
            partners.append(max(p.pid for p in dataset.profiles) + 1000)
            aggregated = partner_weights(collection, profile.pid, partners, scheme)
            for partner in partners:
                assert aggregated[partner] == scheme.weight(
                    collection, profile.pid, partner
                )

    def test_sweep_weights_no_ghosting_vs_beta_one(self, dirty_collection):
        """beta=1.0 ghosting keeps every block >= threshold logic sanity."""
        dataset, collection = dirty_collection
        scheme = make_scheme("cbs")
        profile = dataset.profiles[0]
        unghosted = sweep_weights(collection, profile.pid, lambda pid: True, scheme)
        assert unghosted == [
            (partner, scheme.weight(collection, profile.pid, partner))
            for partner, _ in unghosted
        ]

    def test_sweep_weights_beta_validation(self, dirty_collection):
        _, collection = dirty_collection
        with pytest.raises(ValueError):
            sweep_weights(collection, 0, lambda pid: True, beta=0.0)
        with pytest.raises(ValueError):
            sweep_weights(collection, 0, lambda pid: True, beta=1.5)

    def test_unknown_scheme_falls_back_to_per_pair(self, dirty_collection):
        dataset, collection = dirty_collection

        class HalfCBS:
            name = "half-cbs"

            def weight(self, coll, pid_x, pid_y):
                return coll.common_blocks(pid_x, pid_y) / 2.0

        scheme = HalfCBS()
        profile = dataset.profiles[1]
        swept = sweep_weights(collection, profile.pid, lambda pid: True, scheme)
        for partner, weight in swept:
            assert weight == scheme.weight(collection, profile.pid, partner)


class TestEngineLevelParity:
    """Both CLI paths (sweep vs --per-pair-weighting) give identical runs."""

    @pytest.mark.parametrize("engine_cls", [StreamingEngine, PipelinedStreamingEngine])
    @pytest.mark.parametrize("system_name", sorted(WEIGHTING_SYSTEMS))
    def test_full_run_bit_identical(self, system_name, engine_cls, small_dblp_acm):
        dataset = small_dblp_acm
        increments = split_into_increments(dataset, 8, seed=0)
        plan = make_stream_plan(increments, rate=None)

        def run(per_pair: bool):
            system = make_system(
                system_name, dataset, per_pair_weighting=per_pair
            )
            engine = engine_cls(make_matcher("JS"), budget=30.0)
            return engine.run(system, plan, dataset.ground_truth)

        sweep_result, pair_result = run(False), run(True)
        assert sweep_result.match_events == pair_result.match_events
        assert sweep_result.curve.points == pair_result.curve.points
        assert sweep_result.comparisons_executed == pair_result.comparisons_executed
        assert sweep_result.duplicates == pair_result.duplicates


_HASHSEED_SCRIPT = """
from repro.datasets.registry import load_dataset
from repro.blocking.blocks import BlockCollection
from repro.metablocking.weights import make_scheme
from repro.metablocking.wnp import sweep_wnp

dataset = load_dataset("dblp_acm", scale=0.1)
collection = BlockCollection(clean_clean=True, max_block_size=25)
for profile in dataset.profiles:
    collection.add_profile(profile)
sources = {profile.pid: profile.source for profile in dataset.profiles}
for scheme_name in ("cbs", "ecbs", "js", "arcs"):
    scheme = make_scheme(scheme_name)
    for profile in dataset.profiles[:40]:
        valid = lambda pid, s=profile.source: sources[pid] != s
        result = sweep_wnp(collection, profile.pid, valid, scheme,
                           beta=0.2, source=profile.source)
        for comparison in result.kept:
            print(scheme_name, comparison.left, comparison.right,
                  repr(comparison.weight))
"""


class TestHashSeedStability:
    """The emitted stream must not depend on the interpreter's hash seed."""

    @staticmethod
    def _stream_under_seed(seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    def test_stream_identical_across_hash_seeds(self):
        out_a = self._stream_under_seed("0")
        out_b = self._stream_under_seed("31337")
        assert out_a == out_b
        assert len(out_a.splitlines()) > 20  # the probe emitted real work
