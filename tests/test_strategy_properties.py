"""Hypothesis property tests on the prioritization strategies.

Model-level invariants that must hold for any random data:

* I-PCS dequeues in non-increasing CBS-weight order (within one ingest);
* I-PBS never emits a pair twice and orders by generating-block size;
* I-PES emits every inserted comparison exactly once;
* all strategies agree with each other on *which* comparisons are
  executable (the comparison universe is fixed by blocking + cleaning).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.increments import Increment
from repro.core.profile import EntityProfile
from repro.metablocking.weights import CommonBlocksScheme
from repro.pier.base import PierSystem
from repro.pier.ipbs import IPBS
from repro.pier.ipcs import IPCS
from repro.pier.ipes import IPES

# Random mini-worlds: each profile gets 1-3 tokens from a tiny vocabulary,
# so block structures vary wildly but stay small.
profile_worlds = st.lists(
    st.lists(st.sampled_from(["aa", "bb", "cc", "dd", "ee"]), min_size=1, max_size=3),
    min_size=2,
    max_size=12,
)


def _increment(token_lists) -> Increment:
    profiles = tuple(
        EntityProfile(pid, {"v": " ".join(tokens)}) for pid, tokens in enumerate(token_lists)
    )
    return Increment(0, profiles)


def _drain(strategy):
    pairs = []
    while True:
        pair = strategy.dequeue()
        if pair is None:
            return pairs
        pairs.append(pair)


class TestIPCSProperties:
    @given(profile_worlds)
    @settings(max_examples=50, deadline=None)
    def test_dequeue_order_non_increasing_cbs(self, token_lists):
        system = PierSystem(IPCS(beta=0.01), max_block_size=None)
        system.ingest(_increment(token_lists))
        weights = []
        collection = system.collection
        scheme = CommonBlocksScheme()
        for pair in _drain(system.strategy):
            weights.append(scheme.weight(collection, *pair))
        assert weights == sorted(weights, reverse=True)

    @given(profile_worlds)
    @settings(max_examples=50, deadline=None)
    def test_no_duplicate_emissions(self, token_lists):
        """Both endpoints of a same-increment pair generate it (Alg. 2 runs
        per profile); the framework's emission filter must deduplicate."""
        from repro.streaming.system import PipelineStats

        system = PierSystem(IPCS(beta=0.01), max_block_size=None)
        system.ingest(_increment(token_lists))
        stats = PipelineStats(now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0)
        emitted: list[tuple[int, int]] = []
        for _ in range(200):
            result = system.emit(stats)
            emitted.extend(result.batch)
            if not result.batch and system.on_idle(stats) is None:
                break
        assert len(emitted) == len(set(emitted))


class TestIPBSProperties:
    @given(profile_worlds)
    @settings(max_examples=50, deadline=None)
    def test_no_duplicates_across_refills(self, token_lists):
        system = PierSystem(IPBS(), max_block_size=None)
        system.ingest(_increment(token_lists))
        emitted = []
        for _ in range(200):
            pair = system.strategy.dequeue()
            if pair is None:
                before = len(emitted)
                system.strategy.on_empty_increment(system)
                pair = system.strategy.dequeue()
                if pair is None:
                    break
            emitted.append(pair)
        assert len(emitted) == len(set(emitted))

    @given(profile_worlds)
    @settings(max_examples=50, deadline=None)
    def test_canonical_pairs(self, token_lists):
        system = PierSystem(IPBS(), max_block_size=None)
        system.ingest(_increment(token_lists))
        for pair in _drain(system.strategy):
            assert pair[0] < pair[1]


class TestIPESProperties:
    @given(profile_worlds)
    @settings(max_examples=50, deadline=None)
    def test_everything_inserted_is_emitted_once(self, token_lists):
        from repro.core.comparison import WeightedComparison

        strategy = IPES()
        inserted = set()
        for index, tokens in enumerate(token_lists[:-1]):
            pair = (index, index + len(token_lists))
            weight = float(len(tokens))
            strategy._insert_weighted(WeightedComparison.of(*pair, weight))
            inserted.add((min(pair), max(pair)))
        drained = _drain(strategy)
        assert set(drained) == inserted
        assert len(drained) == len(inserted)

    @given(profile_worlds)
    @settings(max_examples=30, deadline=None)
    def test_len_is_consistent_with_drain(self, token_lists):
        system = PierSystem(IPES(beta=0.01), max_block_size=None)
        system.ingest(_increment(token_lists))
        announced = len(system.strategy)
        drained = len(_drain(system.strategy))
        assert announced == drained


class TestCrossStrategyAgreement:
    @given(profile_worlds)
    @settings(max_examples=30, deadline=None)
    def test_same_comparison_universe_after_full_drain(self, token_lists):
        """Run each strategy (with idle refills) to exhaustion: all must
        execute the same set of comparisons — the co-block universe."""
        universes = []
        for strategy_factory in (lambda: IPCS(beta=0.01), IPBS, lambda: IPES(beta=0.01)):
            system = PierSystem(strategy_factory(), max_block_size=None)
            system.ingest(_increment(token_lists))
            executed: set[tuple[int, int]] = set()
            from repro.streaming.system import PipelineStats

            stats = PipelineStats(
                now=0.0, input_rate=None, mean_match_cost=1e-4, backlog=0
            )
            for _ in range(500):
                result = system.emit(stats)
                executed.update(result.batch)
                if not result.batch and system.on_idle(stats) is None:
                    break
            universes.append(executed)
        assert universes[0] == universes[1] == universes[2]
