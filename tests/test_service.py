"""Tests for the multi-tenant ER service (``repro.service``).

The service's load-bearing guarantee is the determinism contract: a
tenant's results depend only on its accepted operation sequence, never on
how tenants interleave on the shared fleet or on socket scheduling.
Pinned here:

* two push-mode sessions interleaved op-by-op on one shared ``WorkerPool``
  produce results *and checkpoint fingerprints* bit-identical to solo
  runs (the pool's cache-epoch re-claim in action);
* ``TenantSession`` budget admission, accepted-log replay identity, and
  snapshot/restore migration;
* the server end-to-end over a localhost socket: protocol round-trips,
  per-tenant fingerprints matching standalone replays, admission/refusal
  codes, queue-level shedding under a pipelined burst, snapshot/migrate
  across tenants, and clean shutdown.
"""

from __future__ import annotations

import asyncio
import queue
import threading

import pytest

from repro.api import ERSession
from repro.core.profile import EntityProfile
from repro.evaluation.experiments import _build_matcher
from repro.parallel import WorkerPool, strip_parallel_telemetry
from repro.service import (
    ERServer,
    ServiceClient,
    ServiceError,
    TenantConfig,
    TenantSession,
    TenantSnapshot,
    result_fingerprint,
)

BUDGET = 8.0


def _profile(pid: int, text: str) -> EntityProfile:
    return EntityProfile(pid, {"value": text})


def _batches() -> list[list[EntityProfile]]:
    """Three small dirty-ER batches with duplicates across batches."""
    return [
        [
            _profile(0, "alice smith springfield"),
            _profile(1, "bob jones riverton"),
        ],
        [
            _profile(2, "alice smith springfeld"),
            _profile(3, "carol white kingston"),
        ],
        [
            _profile(4, "bob jones riverton north"),
            _profile(5, "alice m smith springfield"),
        ],
    ]


def _drive_tenant(session: TenantSession) -> str:
    for i, batch in enumerate(_batches()):
        session.ingest(batch, at=float(i))
    session.drain(BUDGET)
    fingerprint = result_fingerprint(session.results())
    session.close()
    return fingerprint


# ----------------------------------------------------------------------
# Interleaved push sessions on one shared pool
# ----------------------------------------------------------------------
def _comparable(result):
    metrics = strip_parallel_telemetry(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    metrics.pop("rounds", None)
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "metrics": metrics,
    }


def _checkpoint_fingerprint(checkpoint):
    state = dict(checkpoint.metrics_state)
    state["phases"] = {
        name: (virtual_s, count)
        for name, (virtual_s, _wall_s, count) in state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.budget,
        checkpoint.plan_fingerprint,
        checkpoint.clock,
        checkpoint.duplicates,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        state,
    )


def test_interleaved_push_sessions_share_one_pool(small_dblp_acm):
    """Two tenants alternating on one WorkerPool == their solo runs."""
    pool = WorkerPool.create(2, _build_matcher("JS"), min_shard=1)
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    systems = ("I-PES", "I-PCS")
    horizons = (2.0, 4.0, 6.0, BUDGET)

    def open_push(system):
        session = ERSession(
            small_dblp_acm,
            systems=(system,),
            matcher="JS",
            n_increments=8,
            rate=5.0,
            budget=BUDGET,
            workers=2,
            pool=pool,
        )
        push = session.push()
        push.feed_plan(session.plan_for(system))
        return session, push

    try:
        solo = {}
        for system in systems:
            session, push = open_push(system)
            for horizon in horizons:
                push.drain(horizon)
            solo[system] = (
                _checkpoint_fingerprint(push.checkpoint()),
                _comparable(push.results()),
            )
            session.close()

        sessions = {system: open_push(system) for system in systems}
        # Interleave op-by-op: every drain of one tenant lands between two
        # drains of the other, so each re-claims the fleet's cache epoch.
        for horizon in horizons:
            for system in systems:
                sessions[system][1].drain(horizon)
        for system in systems:
            session, push = sessions[system]
            interleaved = (
                _checkpoint_fingerprint(push.checkpoint()),
                _comparable(push.results()),
            )
            assert interleaved == solo[system], system
            session.close()

        # Sessions never close a borrowed pool.
        assert pool.healthy
    finally:
        pool.close()


# ----------------------------------------------------------------------
# TenantSession: admission, replay identity, migration
# ----------------------------------------------------------------------
def test_tenant_budget_admission():
    session = TenantSession(TenantConfig(tenant_id="t", budget=BUDGET))
    try:
        with pytest.raises(ValueError, match="beyond the tenant budget"):
            session.ingest(_batches()[0], at=BUDGET + 1.0)
        with pytest.raises(ValueError, match="exceeds the tenant budget"):
            session.drain(BUDGET + 1.0)
        assert session.ingests_accepted == 0
    finally:
        session.close()


def test_tenant_accepted_log_replay_is_bit_identical():
    config = TenantConfig(tenant_id="t", budget=BUDGET)
    original = TenantSession(config)
    batches = _batches()
    original.ingest(batches[0], at=0.0)
    original.matches()  # introspection must not perturb the run
    original.ingest(batches[1], at=1.0)
    original.snapshot()
    original.ingest(batches[2], at=2.0)
    original.drain(BUDGET)
    fingerprint = result_fingerprint(original.results())
    original.close()

    replay = TenantSession(config)
    for i, batch in enumerate(batches):
        replay.ingest(batch, at=float(i))
    replay.drain(BUDGET)
    assert result_fingerprint(replay.results()) == fingerprint
    replay.close()


def test_tenant_snapshot_restore_is_bit_identical():
    config = TenantConfig(tenant_id="t", budget=BUDGET)
    batches = _batches()

    uninterrupted = TenantSession(config)
    expected = _drive_tenant(uninterrupted)

    migrating = TenantSession(config)
    migrating.ingest(batches[0], at=0.0)
    migrating.ingest(batches[1], at=1.0)
    blob = migrating.snapshot().to_bytes()
    migrating.close()

    restored = TenantSession(config, snapshot=TenantSnapshot.from_bytes(blob))
    assert restored.ingests_accepted == 2
    restored.ingest(batches[2], at=2.0)
    restored.drain(BUDGET)
    assert result_fingerprint(restored.results()) == expected
    restored.close()


# ----------------------------------------------------------------------
# The server over a localhost socket
# ----------------------------------------------------------------------
class _ServerThread:
    """An ERServer event loop in a daemon thread (clients block normally)."""

    def __init__(self, **kwargs: object) -> None:
        self._kwargs = kwargs
        self._port_queue: queue.Queue = queue.Queue()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        ready = self._port_queue.get(timeout=30)
        if isinstance(ready, BaseException):
            raise ready
        self.port = ready
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server did not shut down cleanly"

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:
            self._port_queue.put(exc)

    async def _serve(self) -> None:
        async with ERServer(**self._kwargs) as server:
            self._port_queue.put(server.port)
            await server.serve_until_stopped()


def test_server_end_to_end_bit_identical_to_standalone():
    config = TenantConfig(tenant_id="t1", budget=BUDGET)
    with _ServerThread() as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            assert client.ping()["version"] == 1
            client.open("t1", system=config.system, budget=BUDGET)
            for i, batch in enumerate(_batches()):
                reply = client.ingest("t1", batch, at=float(i))
                assert reply["at"] == float(i)
            observed = client.matches("t1")
            assert observed["matches"] == sorted(observed["matches"])
            client.drain("t1", BUDGET)
            reply = client.results("t1")
            stats = client.stats()
            assert "t1" in stats["tenants"]
            counters = stats["metrics"]["counters"]
            assert counters["service.tenant.opened"] == 1
            assert counters["service.tenant.ingests"] == 3
            client.close_tenant("t1")
            assert client.stats()["tenants"] == []
            client.shutdown()

    standalone = TenantSession(config)
    assert _drive_tenant(standalone) == reply["fingerprint"]
    assert len(reply["result"]["matches"]) > 0


def test_server_snapshot_migration_between_servers():
    config = TenantConfig(tenant_id="mig", budget=BUDGET)
    uninterrupted = TenantSession(config)
    expected = _drive_tenant(uninterrupted)
    batches = _batches()

    with _ServerThread() as first:
        with ServiceClient("127.0.0.1", first.port) as client:
            client.open("mig", budget=BUDGET)
            client.ingest("mig", batches[0], at=0.0)
            client.ingest("mig", batches[1], at=1.0)
            blob = client.snapshot("mig")
            client.shutdown()

    with _ServerThread() as second:
        with ServiceClient("127.0.0.1", second.port) as client:
            restored = client.restore("mig", blob)
            assert restored["ingested"] == 2
            client.ingest("mig", batches[2], at=2.0)
            client.drain("mig", BUDGET)
            reply = client.results("mig")
            client.shutdown()
    assert reply["fingerprint"] == expected


def test_server_refusal_codes():
    with _ServerThread(max_tenants=1) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.open("only", budget=BUDGET)
            with pytest.raises(ServiceError) as exc:
                client.open("only", budget=BUDGET)
            assert exc.value.code == "admission"
            with pytest.raises(ServiceError) as exc:
                client.open("other", budget=BUDGET)
            assert exc.value.code == "admission"
            with pytest.raises(ServiceError) as exc:
                client.drain("ghost", 1.0)
            assert exc.value.code == "unknown-tenant"
            with pytest.raises(ServiceError) as exc:
                client.drain("only", BUDGET * 2)
            assert exc.value.code == "budget"
            with pytest.raises(ServiceError) as exc:
                client.call("frobnicate")
            assert exc.value.code == "bad-request"
            client.shutdown()


def test_server_sheds_ingests_under_pipelined_burst():
    batches = _batches()
    with _ServerThread(queue_limit=1) as server:
        with ServiceClient("127.0.0.1", server.port) as client:
            client.open("burst", budget=BUDGET)
            pending = [
                client.send_ingest("burst", batches[i % 3], at=float(i) / 4.0)
                for i in range(24)
            ]
            replies = [client.wait(rid, check=False) for rid in pending]
            accepted = [r for r in replies if r.get("ok")]
            shed = [r for r in replies if r.get("error") == "shed"]
            assert len(accepted) + len(shed) == len(replies)
            assert shed, "pipelined burst against queue_limit=1 never shed"
            for reply in shed:
                assert "queue_depth" in reply
            # The server survived and the tenant still finalizes cleanly.
            client.drain("burst", BUDGET)
            reply = client.results("burst")
            counters = client.stats()["metrics"]["counters"]
            assert counters["service.tenant.shed"] == len(shed)
            client.shutdown()

    # Replies are in send order; replaying only the accepted subset
    # standalone must reproduce the service result bit-for-bit.
    replay = TenantSession(TenantConfig(tenant_id="burst", budget=BUDGET))
    for i, r in enumerate(replies):
        if r.get("ok"):
            replay.ingest(batches[i % 3], at=r["at"])
    replay.drain(BUDGET)
    assert result_fingerprint(replay.results()) == reply["fingerprint"]
    replay.close()
