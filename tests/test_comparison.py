"""Tests for comparison candidates and canonical pairs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.comparison import Comparison, WeightedComparison, canonical_pair


class TestCanonicalPair:
    def test_orders_ascending(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_symmetric(self, x, y):
        if x == y:
            return
        assert canonical_pair(x, y) == canonical_pair(y, x)
        left, right = canonical_pair(x, y)
        assert left < right


class TestComparison:
    def test_of_canonicalizes(self):
        assert Comparison.of(9, 4) == Comparison(4, 9)

    def test_involves(self):
        comparison = Comparison.of(1, 2)
        assert comparison.involves(1)
        assert comparison.involves(2)
        assert not comparison.involves(3)

    def test_other(self):
        comparison = Comparison.of(1, 2)
        assert comparison.other(1) == 2
        assert comparison.other(2) == 1

    def test_other_rejects_stranger(self):
        with pytest.raises(ValueError):
            Comparison.of(1, 2).other(3)

    def test_usable_in_sets(self):
        assert len({Comparison.of(1, 2), Comparison.of(2, 1)}) == 1


class TestWeightedComparison:
    def test_of_canonicalizes_and_keeps_weight(self):
        weighted = WeightedComparison.of(9, 4, 3.5)
        assert weighted.pair == (4, 9)
        assert weighted.weight == 3.5

    def test_tuple_weights_supported(self):
        weighted = WeightedComparison.of(1, 2, (-3, 1.5))
        assert weighted.weight == (-3, 1.5)

    def test_comparison_view(self):
        assert WeightedComparison.of(1, 2, 1.0).comparison() == Comparison(1, 2)
