"""Tests for Bloom filters: no false negatives, bounded false positives."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.priority.bloom import BloomFilter, ExactComparisonFilter, ScalableBloomFilter

pairs = st.tuples(
    st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6)
)


class TestBloomFilter:
    def test_added_pairs_found(self):
        bloom = BloomFilter(capacity=100)
        bloom.add(1, 2)
        assert (1, 2) in bloom

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=0)
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, error_rate=1.5)

    def test_is_full(self):
        bloom = BloomFilter(capacity=2)
        assert not bloom.is_full
        bloom.add(1, 2)
        bloom.add(3, 4)
        assert bloom.is_full

    def test_false_positive_rate_roughly_bounded(self):
        bloom = BloomFilter(capacity=1000, error_rate=0.01)
        for i in range(1000):
            bloom.add(i, i + 1)
        false_positives = sum(1 for i in range(10_000, 20_000) if (i, i + 1) in bloom)
        assert false_positives < 400  # 4% — generous margin over the 1% design

    @given(st.lists(pairs, max_size=60))
    @settings(max_examples=50)
    def test_no_false_negatives(self, items):
        bloom = BloomFilter(capacity=max(len(items), 1))
        for left, right in items:
            bloom.add(left, right)
        for pair in items:
            assert pair in bloom

    def test_determinism_across_instances(self):
        a, b = BloomFilter(64), BloomFilter(64)
        a.add(10, 20)
        b.add(10, 20)
        assert a._bits == b._bits


class TestScalableBloomFilter:
    def test_grows_slices(self):
        bloom = ScalableBloomFilter(initial_capacity=8, growth=2)
        for i in range(100):
            bloom.add(i, i + 1)
        assert bloom.num_slices > 1
        assert bloom.count == 100

    def test_no_false_negatives_across_slices(self):
        bloom = ScalableBloomFilter(initial_capacity=4)
        items = [(i, i * 7 + 1) for i in range(500)]
        for left, right in items:
            bloom.add(left, right)
        assert all((left, right) in bloom for left, right in items)

    def test_contains_helper(self):
        bloom = ScalableBloomFilter()
        bloom.add(5, 9)
        assert bloom.contains(5, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalableBloomFilter(growth=1)
        with pytest.raises(ValueError):
            ScalableBloomFilter(tightening=1.0)

    def test_compound_false_positive_rate(self):
        bloom = ScalableBloomFilter(initial_capacity=64, error_rate=0.01)
        for i in range(2000):
            bloom.add(i, i + 1)
        false_positives = sum(1 for i in range(10_000, 15_000) if (i, i + 1) in bloom)
        assert false_positives / 5000 < 0.05


class TestExactComparisonFilter:
    def test_exactness(self):
        exact = ExactComparisonFilter()
        exact.add(1, 2)
        assert (1, 2) in exact
        assert (2, 3) not in exact
        assert exact.count == 1


_HASHSEED_SCRIPT = """
from repro.priority.bloom import ScalableBloomFilter

bloom = ScalableBloomFilter(initial_capacity=64)
for i in range(500):
    bloom.add((i * 31) % 1000, (i * 17) % 997)
bits = "".join(
    "1" if bloom.contains(i, i + 1) else "0" for i in range(2000)
)
print(bits)
print(bloom.num_slices)
"""


class TestHashSeedIndependence:
    """I-PBS dedup correctness requires bloom membership to be identical
    across interpreter runs, whatever ``PYTHONHASHSEED`` says."""

    @staticmethod
    def _membership_under_seed(seed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout

    def test_membership_identical_across_hash_seeds(self):
        out_a = self._membership_under_seed("0")
        out_b = self._membership_under_seed("12345")
        assert out_a == out_b
        bits = out_a.splitlines()[0]
        assert len(bits) == 2000 and "1" in bits  # the probe saw real data
