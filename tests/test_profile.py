"""Tests for the schema-agnostic entity profile model."""

from __future__ import annotations

import pytest

from repro.core.profile import Attribute, EntityProfile
from repro.core.tokenizer import Tokenizer


class TestAttribute:
    def test_holds_name_and_value(self):
        attribute = Attribute("title", "The Matrix")
        assert attribute.name == "title"
        assert attribute.value == "The Matrix"

    def test_rejects_non_string_value(self):
        with pytest.raises(TypeError):
            Attribute("year", 1999)

    def test_is_hashable_and_comparable(self):
        assert Attribute("a", "x") == Attribute("a", "x")
        assert hash(Attribute("a", "x")) == hash(Attribute("a", "x"))
        assert Attribute("a", "x") != Attribute("a", "y")


class TestEntityProfile:
    def test_construction_from_mapping(self):
        profile = EntityProfile(1, {"title": "Matrix", "year": "1999"})
        names = {attribute.name for attribute in profile.attributes}
        assert names == {"title", "year"}

    def test_construction_from_pairs(self):
        profile = EntityProfile(1, [("a", "x"), ("b", "y")])
        assert len(profile.attributes) == 2

    def test_construction_from_attribute_objects(self):
        profile = EntityProfile(1, [Attribute("a", "x")])
        assert profile.attributes[0].value == "x"

    def test_none_values_dropped(self):
        profile = EntityProfile(1, [("a", None), ("b", "y")])
        assert len(profile.attributes) == 1

    def test_empty_values_dropped(self):
        profile = EntityProfile(1, {"a": "", "b": "y"})
        assert len(profile.attributes) == 1

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            EntityProfile(-1, {"a": "x"})

    def test_default_source_is_zero(self):
        assert EntityProfile(0, {}).source == 0

    def test_tokens_are_lowercased_and_split(self):
        profile = EntityProfile(1, {"title": "The Matrix (1999)"})
        assert profile.tokens() == frozenset({"matrix", "1999"})

    def test_tokens_union_over_attributes(self):
        profile = EntityProfile(1, {"a": "alpha beta", "b": "beta gamma"})
        assert profile.tokens() == frozenset({"alpha", "beta", "gamma"})

    def test_tokens_cached(self):
        profile = EntityProfile(1, {"a": "alpha"})
        assert profile.tokens() is profile.tokens()

    def test_custom_tokenizer_bypasses_cache(self):
        profile = EntityProfile(1, {"a": "alpha xy"})
        strict = Tokenizer(min_length=3)
        assert "xy" not in profile.tokens(strict)
        # default tokenizer still sees the short token (min_length=2)
        assert "xy" in profile.tokens()

    def test_text_concatenates_values(self):
        profile = EntityProfile(1, [("a", "hello"), ("b", "world")])
        assert profile.text() == "hello world"

    def test_text_length_matches_text(self):
        profile = EntityProfile(1, [("a", "hello"), ("b", "world")])
        assert profile.text_length() == len(profile.text())

    def test_text_length_empty_profile(self):
        assert EntityProfile(1, {}).text_length() == 0

    def test_equality_and_hash_by_pid(self):
        a = EntityProfile(7, {"x": "1"})
        b = EntityProfile(7, {"y": "2"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != EntityProfile(8, {"x": "1"})

    def test_equality_with_other_types(self):
        assert EntityProfile(1, {}) != "not a profile"

    def test_repr_mentions_pid(self):
        assert "pid=3" in repr(EntityProfile(3, {"a": "x"}))

    def test_values_iterates_in_order(self):
        profile = EntityProfile(1, [("a", "first"), ("b", "second")])
        assert list(profile.values()) == ["first", "second"]
