"""Tests for the experiment harness (factory + runner)."""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    ExperimentConfig,
    make_matcher,
    make_system,
    run_experiment,
)
from repro.incremental.ibase import IBaseSystem
from repro.matching.matcher import EditDistanceMatcher, JaccardMatcher
from repro.pier.base import PierSystem
from repro.progressive.batch import BatchERSystem
from repro.progressive.pbs import PBSSystem
from repro.progressive.pps import PPSSystem


class TestMakeMatcher:
    def test_js(self):
        assert isinstance(make_matcher("JS"), JaccardMatcher)
        assert isinstance(make_matcher("js"), JaccardMatcher)

    def test_ed(self):
        assert isinstance(make_matcher("ED"), EditDistanceMatcher)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_matcher("cosine")


class TestMakeSystem:
    @pytest.mark.parametrize(
        "name,kind",
        [
            ("I-PES", PierSystem),
            ("I-PCS", PierSystem),
            ("I-PBS", PierSystem),
            ("I-BASE", IBaseSystem),
            ("PPS", PPSSystem),
            ("PBS", PBSSystem),
            ("PPS-GLOBAL", PPSSystem),
            ("PPS-LOCAL", PPSSystem),
            ("PBS-GLOBAL", PBSSystem),
            ("BATCH", BatchERSystem),
        ],
    )
    def test_factory(self, name, kind, toy_dirty_dataset):
        system = make_system(name, toy_dirty_dataset)
        assert isinstance(system, kind)

    def test_names_preserved(self, toy_dirty_dataset):
        assert make_system("PPS-GLOBAL", toy_dirty_dataset).name == "PPS-GLOBAL"
        assert make_system("PPS-LOCAL", toy_dirty_dataset).name == "PPS-LOCAL"
        assert make_system("PPS", toy_dirty_dataset).name == "PPS"

    def test_clean_clean_propagates(self, toy_clean_clean_dataset):
        system = make_system("I-PES", toy_clean_clean_dataset)
        assert system.collection.clean_clean

    def test_unknown(self, toy_dirty_dataset):
        with pytest.raises(ValueError):
            make_system("I-WHAT", toy_dirty_dataset)


class TestRunExperiment:
    def test_runs_all_systems(self, small_dblp_acm):
        config = ExperimentConfig(
            dataset_name="dblp_acm",
            systems=("I-PES", "I-BASE"),
            matcher="JS",
            n_increments=10,
            budget=30.0,
            dataset=small_dblp_acm,
        )
        results = run_experiment(config)
        assert set(results) == {"I-PES", "I-BASE"}
        assert all(result.final_pc >= 0 for result in results.values())

    def test_batch_systems_get_single_increment_in_static(self, small_dblp_acm):
        config = ExperimentConfig(
            dataset_name="dblp_acm",
            systems=("PPS",),
            n_increments=10,
            rate=None,
            budget=30.0,
            dataset=small_dblp_acm,
        )
        results = run_experiment(config)
        assert results["PPS"].increments_ingested == 1

    def test_dynamic_setting_streams_everyone(self, small_dblp_acm):
        config = ExperimentConfig(
            dataset_name="dblp_acm",
            systems=("PPS-GLOBAL",),
            n_increments=5,
            rate=100.0,
            budget=30.0,
            dataset=small_dblp_acm,
        )
        results = run_experiment(config)
        assert results["PPS-GLOBAL"].increments_ingested == 5

    def test_with_overrides(self):
        config = ExperimentConfig(dataset_name="movies", systems=("I-PES",))
        faster = config.with_overrides(rate=8.0)
        assert faster.rate == 8.0
        assert faster.dataset_name == "movies"

    def test_load_uses_registry_when_no_dataset(self):
        config = ExperimentConfig(
            dataset_name="dblp_acm", systems=("I-PES",), scale=0.05
        )
        assert config.load().name == "dblp_acm"
