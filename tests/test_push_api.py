"""Tests for the push-mode run surface (``PushRun`` / ``PushSession``).

Push mode is the API redesign behind the service: ``run()`` is now the
degenerate push schedule (feed the whole plan, drain once to the budget,
collect results), so the engine-parity suites already exercise the path on
every run.  Pinned here, beyond that by-construction guarantee:

* feeding increments one by one equals feeding a prepared plan;
* a multi-drain schedule is deterministic (same schedule, same results,
  same checkpoint fingerprints) across independent runs;
* feed/drain argument validation (regressing arrivals, non-finite times,
  non-monotonic horizons);
* ``results()`` is terminal — further feeds and drains raise;
* checkpoint/resume across push runs, including the migration shape
  (``adopt_checkpoint_budget`` + explicit ``start()`` binding the restore
  to the re-fed arrivals);
* the session-level ``ingest``/``drain``/``results`` conveniences.
"""

from __future__ import annotations

import math

import pytest

from repro.api import EngineOptions, ERSession
from repro.core.profile import EntityProfile

BUDGET = 8.0


@pytest.fixture(scope="module")
def dataset(small_dblp_acm):
    return small_dblp_acm


def _session(dataset, **kwargs):
    defaults = dict(
        systems=("I-PES",),
        matcher="JS",
        n_increments=8,
        rate=5.0,
        budget=BUDGET,
    )
    defaults.update(kwargs)
    return ERSession(dataset, **defaults)


def _comparable(result):
    metrics = dict(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    metrics.pop("rounds", None)
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "work_exhausted": result.work_exhausted,
        "increments_ingested": result.increments_ingested,
        "match_events": result.match_events,
        "metrics": metrics,
    }


def _checkpoint_fingerprint(checkpoint):
    state = dict(checkpoint.metrics_state)
    state["phases"] = {
        name: (virtual_s, count)
        for name, (virtual_s, _wall_s, count) in state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.budget,
        checkpoint.plan_fingerprint,
        checkpoint.clock,
        checkpoint.ingest_clock,
        checkpoint.next_arrival,
        checkpoint.consumed_at,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.shed,
        checkpoint.duplicates_dropped,
        checkpoint.seen_increments,
        checkpoint.duplicates,
        checkpoint.quarantined,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        state,
    )


# ----------------------------------------------------------------------
# Parity with the classic run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("pipelined", [False, True], ids=["serial", "pipelined"])
def test_manual_push_equals_run(dataset, pipelined):
    with _session(dataset, engine=EngineOptions(pipelined=pipelined)) as session:
        classic = session.run()
    with _session(dataset, engine=EngineOptions(pipelined=pipelined)) as session:
        push = session.push()
        push.feed_plan(session.plan_for("I-PES"))
        push.drain(BUDGET)
        pushed = push.results()
    assert _comparable(pushed) == _comparable(classic)


def test_feeding_one_by_one_equals_feeding_a_plan(dataset):
    with _session(dataset) as session:
        plan = session.plan_for("I-PES")
        whole = session.push()
        whole.feed_plan(plan)
        whole.drain(BUDGET)
        piecewise = session.push()
        for at, increment in plan:
            piecewise.feed(increment, at=at)
        piecewise.drain(BUDGET)
        assert _comparable(piecewise.results()) == _comparable(whole.results())


def test_multi_drain_schedule_is_deterministic(dataset):
    def run_schedule():
        with _session(dataset) as session:
            push = session.push()
            push.feed_plan(session.plan_for("I-PES"))
            for horizon in (2.0, 5.0, BUDGET):
                push.drain(horizon)
                assert push.horizon == horizon
            fingerprint = _checkpoint_fingerprint(push.checkpoint())
            return _comparable(push.results()), fingerprint

    first, first_ckpt = run_schedule()
    second, second_ckpt = run_schedule()
    assert first == second
    assert first_ckpt == second_ckpt


def test_progressive_observation_between_drains(dataset):
    with _session(dataset) as session:
        push = session.push()
        assert not push.started
        push.feed_plan(session.plan_for("I-PES"))
        backlog_before = push.backlog
        assert backlog_before == 8
        push.drain(BUDGET / 2)
        assert push.started
        assert push.clock <= BUDGET / 2
        mid_matches = len(push.matches)
        mid_comparisons = push.comparisons_executed
        push.drain(BUDGET)
        result = push.results()
        assert push.comparisons_executed >= mid_comparisons
        assert len(result.duplicates) >= mid_matches


# ----------------------------------------------------------------------
# Ingestion of raw profiles
# ----------------------------------------------------------------------
def test_ingest_wraps_profiles_into_numbered_increments(dataset):
    profiles = list(dataset.profiles[:9])
    with ERSession(
        type(dataset)("push_toy", profiles, dataset.ground_truth, dataset.kind),
        systems=("I-PES",),
        matcher="JS",
        budget=BUDGET,
    ) as session:
        push = session.push()
        push.ingest(profiles[:3], at=0.0)
        push.ingest(profiles[3:6], at=0.5)
        push.ingest(profiles[6:], at=1.0)
        assert push.increments_fed == 3
        push.drain(BUDGET)
        result = push.results()
        assert result.increments_ingested == 3


def test_ingest_default_arrival_is_now(dataset):
    with _session(dataset) as session:
        push = session.push()
        assert push.ingest(dataset.profiles[:2]) == 0.0
        push.drain(1.5)
        # "Now" is the later of the clock and the last arrival.
        assert push.ingest(dataset.profiles[2:4]) == pytest.approx(push.clock)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_feed_rejects_regressing_and_non_finite_arrivals(dataset):
    with _session(dataset) as session:
        push = session.push()
        push.ingest(dataset.profiles[:2], at=2.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            push.ingest(dataset.profiles[2:4], at=1.0)
        with pytest.raises(ValueError, match="finite"):
            push.ingest(dataset.profiles[2:4], at=math.inf)
        with pytest.raises(ValueError, match="finite"):
            push.ingest(dataset.profiles[2:4], at=math.nan)
        with pytest.raises(ValueError, match="non-negative"):
            push.ingest(dataset.profiles[2:4], at=-1.0)


def test_drain_rejects_non_monotonic_horizons(dataset):
    with _session(dataset) as session:
        push = session.push()
        push.feed_plan(session.plan_for("I-PES"))
        with pytest.raises(ValueError, match="positive"):
            push.drain(0.0)
        push.drain(4.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            push.drain(2.0)


def test_results_is_terminal(dataset):
    with _session(dataset) as session:
        push = session.push()
        push.feed_plan(session.plan_for("I-PES"))
        push.drain(BUDGET)
        result = push.results()
        assert push.finished
        assert push.results() is result
        with pytest.raises(RuntimeError, match="finalized"):
            push.ingest(dataset.profiles[:2])
        with pytest.raises(RuntimeError, match="finalized"):
            push.drain(BUDGET)
        with pytest.raises(RuntimeError, match="finalized"):
            push.checkpoint()


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_push_checkpoint_resume_is_bit_identical(dataset):
    with _session(dataset) as session:
        plan = session.plan_for("I-PES")
        reference = session.push()
        reference.feed_plan(plan)
        reference.drain(4.0)
        reference.drain(BUDGET)
        expected = _comparable(reference.results())

    with _session(dataset) as session:
        push = session.push()
        push.feed_plan(session.plan_for("I-PES"))
        push.drain(4.0)
        checkpoint = push.checkpoint()

    with _session(dataset) as session:
        resumed = session.push(resume_from=checkpoint, adopt_checkpoint_budget=True)
        resumed.feed_plan(session.plan_for("I-PES"))
        resumed.drain(BUDGET)
        assert _comparable(resumed.results()) == expected


def test_start_binds_restore_before_further_feeds(dataset):
    """The migration shape: re-feed the logged arrivals, start(), go on."""
    with _session(dataset) as session:
        plan = list(session.plan_for("I-PES"))
        # The reference follows the same feed/drain schedule uninterrupted:
        # what the engine does during a drain depends on the arrivals fed
        # by then, so the prefix must match the migrated run's log exactly.
        reference = session.push()
        for at, increment in plan[:4]:
            reference.feed(increment, at=at)
        reference.drain(1.0)
        for at, increment in plan[4:]:
            reference.feed(increment, at=at)
        reference.drain(BUDGET)
        expected = _comparable(reference.results())

    with _session(dataset) as session:
        push = session.push()
        fed = plan[:4]
        for at, increment in fed:
            push.feed(increment, at=at)
        push.drain(1.0)
        checkpoint = push.checkpoint()

    with _session(dataset) as session:
        resumed = session.push(resume_from=checkpoint, adopt_checkpoint_budget=True)
        for at, increment in fed:
            resumed.feed(increment, at=at)
        # Materialize the restore against exactly the re-fed arrivals —
        # the feeds below must not grow the plan past its fingerprint.
        resumed.start()
        assert resumed.started
        for at, increment in plan[4:]:
            resumed.feed(increment, at=at)
        resumed.drain(BUDGET)
        assert _comparable(resumed.results()) == expected


# ----------------------------------------------------------------------
# Session-level conveniences
# ----------------------------------------------------------------------
def test_session_level_push_conveniences(dataset):
    with _session(dataset) as session:
        with pytest.raises(RuntimeError, match="no push run in progress"):
            session.results()
        session.ingest(dataset.profiles[:4], at=0.0)
        session.ingest(dataset.profiles[4:8], at=0.5)
        session.drain(BUDGET)
        result = session.results()
        assert result.increments_ingested == 2
        # A finalized default run is replaced transparently.
        session.ingest(dataset.profiles[:4], at=0.0)
        session.drain(BUDGET)
        assert session.results().increments_ingested == 1
