"""Tests for the incremental token blocking component."""

from __future__ import annotations

import pytest

from repro.blocking.token_blocking import BlockingCosts, IncrementalTokenBlocking
from repro.core.increments import Increment

from tests.conftest import make_profile


class TestIncrementalTokenBlocking:
    def test_process_profile_indexes_and_stores(self):
        blocker = IncrementalTokenBlocking()
        profile = make_profile(1, "alpha beta")
        cost = blocker.process_profile(profile)
        assert cost > 0
        assert blocker.profile(1) is profile
        assert blocker.collection.blocks_of(1) == {"alpha", "beta"}

    def test_process_increment_accumulates_cost(self):
        blocker = IncrementalTokenBlocking()
        increment = Increment(0, tuple(make_profile(i, f"tok{i}") for i in range(3)))
        cost = blocker.process_increment(increment)
        assert cost == pytest.approx(blocker.total_cost)
        assert blocker.profiles_processed == 3

    def test_cost_scales_with_tokens(self):
        costs = BlockingCosts(per_profile=0.0, per_token=1.0)
        blocker = IncrementalTokenBlocking(costs=costs)
        cost = blocker.process_profile(make_profile(1, "aa bb cc"))
        assert cost == pytest.approx(3.0)

    def test_empty_increment_costs_nothing(self):
        blocker = IncrementalTokenBlocking()
        assert blocker.process_increment(Increment(0, ())) == 0.0

    def test_get_profile_missing(self):
        blocker = IncrementalTokenBlocking()
        assert blocker.get_profile(42) is None
        with pytest.raises(KeyError):
            blocker.profile(42)

    def test_clean_clean_flag_propagates(self):
        blocker = IncrementalTokenBlocking(clean_clean=True)
        assert blocker.collection.clean_clean

    def test_known_profiles(self):
        blocker = IncrementalTokenBlocking()
        blocker.process_profile(make_profile(1, "x1"))
        blocker.process_profile(make_profile(2, "x2"))
        assert blocker.known_profiles() == 2
