"""Shared fixtures: small deterministic datasets and profile factories."""

from __future__ import annotations

import pytest

from repro.core.dataset import Dataset, ERKind, GroundTruth
from repro.core.profile import EntityProfile
from repro.datasets.registry import load_dataset


def make_profile(pid: int, text: str, source: int = 0, attr: str = "value") -> EntityProfile:
    """Tiny helper: a profile with a single attribute."""
    return EntityProfile(pid, {attr: text}, source=source)


@pytest.fixture
def toy_dirty_dataset() -> Dataset:
    """Six profiles, two duplicate clusters: {0,1,2} and {3,4}; 5 is alone."""
    profiles = [
        make_profile(0, "alice smith springfield"),
        make_profile(1, "alice smith springfeld"),
        make_profile(2, "alice m smith springfield"),
        make_profile(3, "bob jones riverton"),
        make_profile(4, "bob jones riverton north"),
        make_profile(5, "carol white kingston"),
    ]
    truth = GroundTruth([(0, 1), (0, 2), (1, 2), (3, 4)])
    return Dataset("toy_dirty", profiles, truth, ERKind.DIRTY)


@pytest.fixture
def toy_clean_clean_dataset() -> Dataset:
    """Two clean sources with two cross-source matches."""
    profiles = [
        make_profile(0, "matrix 1999 wachowski", source=0),
        make_profile(1, "inception 2010 nolan", source=0),
        make_profile(2, "heat 1995 mann", source=0),
        make_profile(3, "matrix wachowski 1999 film", source=1),
        make_profile(4, "inception nolan 2010 movie", source=1),
        make_profile(5, "unrelated documentary 2003", source=1),
    ]
    truth = GroundTruth([(0, 3), (1, 4)])
    return Dataset("toy_cc", profiles, truth, ERKind.CLEAN_CLEAN)


@pytest.fixture(scope="session")
def small_dblp_acm() -> Dataset:
    return load_dataset("dblp_acm", scale=0.2)


@pytest.fixture(scope="session")
def small_census() -> Dataset:
    return load_dataset("census_2m", scale=0.15)


@pytest.fixture(scope="session")
def small_movies() -> Dataset:
    return load_dataset("movies", scale=0.15)


@pytest.fixture(scope="session")
def small_dbpedia() -> Dataset:
    return load_dataset("dbpedia", scale=0.15)
