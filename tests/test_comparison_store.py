"""Unit tests for the shared :class:`ComparisonStore`.

The store centralizes executed-set, Bloom dedup, quarantine and emission
accounting for every ER system; these tests pin down its lifecycle rules
(what survives ``begin_run``, what a snapshot round-trip restores) and the
identity guarantees that I-PBS relies on (the Bloom filter object must stay
the *same object* across restore).
"""

from __future__ import annotations

import copy

from repro.execution.store import ComparisonStore


def test_mark_executed_claims_exactly_once():
    store = ComparisonStore()
    assert store.mark_executed((1, 2)) is True
    assert store.mark_executed((1, 2)) is False
    assert store.was_executed(1, 2)
    # was_executed canonicalizes argument order.
    assert store.was_executed(2, 1)
    assert not store.was_executed(1, 3)


def test_emission_accounting_accumulates():
    store = ComparisonStore()
    store.record_emission(5)
    store.record_emission(3, stale=2)
    assert store.emitted == 8
    assert store.stale_dequeues == 2


def test_begin_run_clears_only_quarantine():
    store = ComparisonStore()
    store.mark_executed((1, 2))
    store.record_emission(1)
    store.quarantine((3, 4))
    bloom = store.bloom_filter()
    bloom.add(1, 2)
    store.begin_run()
    # Quarantine is per-run state...
    assert store.quarantined == set()
    # ...but the executed set, accounting and Bloom filter share the
    # system's lifetime.
    assert store.was_executed(1, 2)
    assert store.emitted == 1
    assert store.bloom_filter() is bloom
    assert bloom.contains(1, 2)


def test_bloom_filter_is_lazily_created_and_shared():
    store = ComparisonStore()
    first = store.bloom_filter(initial_capacity=64)
    # Later callers get the same object regardless of requested capacity.
    assert store.bloom_filter(initial_capacity=4096) is first


def test_snapshot_round_trip():
    store = ComparisonStore()
    store.mark_executed((1, 2))
    store.mark_executed((3, 4))
    store.quarantine((5, 6))
    store.record_emission(2, stale=1)
    store.bloom_filter().add(1, 2)
    state = copy.deepcopy(store.snapshot_state())

    store.mark_executed((7, 8))
    store.quarantine((9, 10))
    store.record_emission(4)
    store.bloom_filter().add(7, 8)

    store.restore_state(state)
    assert store.executed == {(1, 2), (3, 4)}
    assert store.quarantined == {(5, 6)}
    assert store.emitted == 2
    assert store.stale_dequeues == 1
    assert store.bloom_filter().contains(1, 2)
    assert not store.bloom_filter().contains(7, 8)


def test_snapshot_is_isolated_from_later_mutation():
    store = ComparisonStore()
    store.mark_executed((1, 2))
    state = store.snapshot_state()
    store.mark_executed((3, 4))
    assert state["executed"] == {(1, 2)}


def test_restore_preserves_bloom_identity():
    """Restoring must mutate the Bloom filter in place: I-PBS binds a direct
    reference via ``bind_store`` and must keep seeing the restored bits."""
    store = ComparisonStore()
    bound_reference = store.bloom_filter()
    bound_reference.add(1, 2)
    state = copy.deepcopy(store.snapshot_state())
    bound_reference.add(3, 4)

    store.restore_state(state)
    assert store.bloom_filter() is bound_reference
    assert bound_reference.contains(1, 2)
    assert not bound_reference.contains(3, 4)


def test_restore_without_bloom_state():
    store = ComparisonStore()
    state = store.snapshot_state()
    assert state["bloom"] is None
    store.restore_state(state)
    # A fresh filter can still be created afterwards.
    assert not store.bloom_filter().contains(1, 2)


def test_restore_creates_bloom_when_missing():
    """A fresh system restoring a checkpoint that carried Bloom state must
    reconstruct the filter bit-exactly."""
    source = ComparisonStore()
    source.bloom_filter().add(1, 2)
    state = source.snapshot_state()

    target = ComparisonStore()
    target.restore_state(state)
    assert target.bloom_filter().contains(1, 2)
    assert not target.bloom_filter().contains(3, 4)
