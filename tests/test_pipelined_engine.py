"""Tests for the two-stage pipelined engine (task-parallel extension)."""

from __future__ import annotations

import pytest

from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import make_matcher, make_system
from repro.incremental.ibase import IBaseSystem
from repro.matching.matcher import EditDistanceMatcher, JaccardMatcher
from repro.pier.base import PierSystem
from repro.pier.ipes import IPES
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine


class TestPipelinedBasics:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            PipelinedStreamingEngine(JaccardMatcher(), budget=0.0)

    def test_static_run_matches_serial_results(self, toy_dirty_dataset):
        plan = make_stream_plan(split_into_increments(toy_dirty_dataset, 2), rate=None)
        serial = StreamingEngine(JaccardMatcher(0.4), budget=60.0).run(
            PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth
        )
        pipelined = PipelinedStreamingEngine(JaccardMatcher(0.4), budget=60.0).run(
            PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth
        )
        assert pipelined.final_pc == serial.final_pc
        assert pipelined.work_exhausted

    def test_deterministic(self, small_census):
        plan = make_stream_plan(split_into_increments(small_census, 8, seed=2), rate=4.0)
        run = lambda: PipelinedStreamingEngine(JaccardMatcher(0.4), budget=20.0).run(
            PierSystem(IPES()), plan, small_census.ground_truth
        )
        a, b = run(), run()
        assert a.final_pc == b.final_pc
        assert a.clock_end == b.clock_end

    def test_curve_monotone(self, small_census):
        plan = make_stream_plan(split_into_increments(small_census, 10), rate=8.0)
        result = PipelinedStreamingEngine(JaccardMatcher(0.4), budget=30.0).run(
            PierSystem(IPES()), plan, small_census.ground_truth
        )
        times = [point.time for point in result.curve.points]
        assert times == sorted(times)

    def test_empty_plan(self, toy_dirty_dataset):
        plan = make_stream_plan([], rate=None)
        result = PipelinedStreamingEngine(JaccardMatcher(0.4), budget=10.0).run(
            PierSystem(IPES()), plan, toy_dirty_dataset.ground_truth
        )
        assert result.work_exhausted
        assert result.comparisons_executed == 0


class TestPipelineParallelism:
    def test_stream_consumed_no_later_than_serial_under_load(self, small_dbpedia):
        """With an expensive matcher, the ingest stage no longer waits for
        the matcher: the pipelined engine consumes the stream earlier."""
        plan = make_stream_plan(
            split_into_increments(small_dbpedia, 60, seed=0), rate=32.0
        )
        serial = StreamingEngine(EditDistanceMatcher(0.7), budget=60.0).run(
            make_system("I-PES", small_dbpedia), plan, small_dbpedia.ground_truth
        )
        pipelined = PipelinedStreamingEngine(EditDistanceMatcher(0.7), budget=60.0).run(
            make_system("I-PES", small_dbpedia), plan, small_dbpedia.ground_truth
        )
        assert pipelined.stream_consumed_at is not None
        if serial.stream_consumed_at is not None:
            assert pipelined.stream_consumed_at <= serial.stream_consumed_at + 1e-9

    def test_early_quality_not_worse_under_load(self, small_dbpedia):
        plan = make_stream_plan(
            split_into_increments(small_dbpedia, 60, seed=0), rate=32.0
        )
        budget = 60.0
        serial = StreamingEngine(EditDistanceMatcher(0.7), budget=budget).run(
            make_system("I-PES", small_dbpedia), plan, small_dbpedia.ground_truth
        )
        pipelined = PipelinedStreamingEngine(EditDistanceMatcher(0.7), budget=budget).run(
            make_system("I-PES", small_dbpedia), plan, small_dbpedia.ground_truth
        )
        assert pipelined.curve.area_under_curve(budget) >= serial.curve.area_under_curve(
            budget
        ) - 0.05

    def test_backpressure_respected(self, small_census):
        plan = make_stream_plan(
            split_into_increments(small_census, 20, seed=1), rate=1000.0
        )
        system = IBaseSystem(high_watermark=5, chunk_size=1)
        result = PipelinedStreamingEngine(JaccardMatcher(0.4), budget=200.0).run(
            system, plan, small_census.ground_truth
        )
        assert result.increments_ingested == 20
