"""Tests for the self-healing worker fleet (``repro.parallel.supervision``).

The contract under test is the supervision invariant: faults change
*where* pairs are scored, never *what* is scored.  Under any schedule of
worker SIGKILLs, hangs past the reply deadline, or corrupt replies,

* every round's merged scores are bit-identical to the serial kernel
  (condemned chunks are rescued in-process at their merge position);
* only the faulted worker is evicted — the fleet is never condemned for
  one bad pipe — and the slot respawns with capped jittered backoff;
* results, metrics-at-checkpoint, and checkpoint fingerprints coincide
  byte-for-byte with the serial run across all four strategies and both
  engines;
* the pool turns ``broken`` (terminal) only after every slot exhausts its
  respawn budget;
* shm segments published by a master that never reaches ``close()`` are
  swept at exit, and debris left by a SIGKILLed master is reaped at the
  next pool start.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.api import EngineOptions, ERSession
from repro.cli import build_parser
from repro.core.increments import make_stream_plan, split_into_increments
from repro.evaluation.experiments import _build_matcher, _build_system
from repro.parallel import (
    SupervisionConfig,
    WorkerPool,
    strip_parallel_telemetry,
    sweep_stale_segments,
)
from repro.parallel.pool import WorkerPoolError, _create_segment
from repro.parallel.supervision import (
    ALIVE,
    DEAD,
    EVICTED,
    default_handshake_timeout,
    default_reply_timeout,
)
from repro.resilience import ResilienceConfig, RetryPolicy, SimulatedCrash, WorkerFaultSpec
from repro.streaming.engine import StreamingEngine
from repro.streaming.pipelined import PipelinedStreamingEngine

STRATEGIES = ["I-PCS", "I-PBS", "I-PES", "I-BASE"]
BUDGET = 8.0

#: Fast supervision for chaos tests: tight reply deadline (the hang fault
#: sleeps well past it), immediate unjittered respawns, default budget.
FAST_SUPERVISION = SupervisionConfig(
    reply_timeout_s=1.0,
    respawn_backoff=RetryPolicy(base_backoff=0.001, backoff_factor=1.0, max_backoff=0.001),
)


@pytest.fixture(scope="module")
def dataset(small_dblp_acm):
    return small_dblp_acm


@pytest.fixture(scope="module")
def plan(small_dblp_acm):
    increments = split_into_increments(small_dblp_acm, 8, seed=0)
    return make_stream_plan(increments, rate=5.0)


@pytest.fixture(scope="module")
def sample_pairs(dataset):
    rng = random.Random(5)
    profiles = dataset.profiles
    return [
        (profiles[rng.randrange(len(profiles))], profiles[rng.randrange(len(profiles))])
        for _ in range(90)
    ]


def _faulted_pool(worker_faults, *, workers=2, supervision=FAST_SUPERVISION):
    pool = WorkerPool.create(
        workers,
        _build_matcher("ED"),
        min_shard=1,
        supervision=supervision,
        worker_faults=worker_faults,
    )
    if pool is None:
        pytest.skip("process pool unavailable on this host")
    return pool


def _comparable(result):
    metrics = strip_parallel_telemetry(result.details["metrics"])
    metrics["phases"] = {
        phase: {key: value for key, value in totals.items() if key != "wall_s"}
        for phase, totals in metrics["phases"].items()
    }
    return {
        "curve": result.curve.points,
        "duplicates": result.duplicates,
        "comparisons_executed": result.comparisons_executed,
        "clock_end": result.clock_end,
        "match_events": result.match_events,
        "metrics": metrics,
    }


def _checkpoint_fingerprint(checkpoint):
    metrics_state = dict(checkpoint.metrics_state)
    metrics_state["phases"] = {
        phase: (virtual_s, count)
        for phase, (virtual_s, _wall_s, count) in metrics_state["phases"].items()
    }
    return (
        checkpoint.engine,
        checkpoint.clock,
        checkpoint.rounds,
        checkpoint.ingested,
        checkpoint.duplicates,
        checkpoint.recorder_state,
        checkpoint.estimator_state,
        metrics_state,
    )


def _run(engine_cls, dataset, plan, strategy, *, workers=1, pool=None, **kwargs):
    engine = engine_cls(
        _build_matcher("ED"), budget=BUDGET, workers=workers, pool=pool, **kwargs
    )
    result = engine.run(_build_system(strategy, dataset), plan, dataset.ground_truth)
    engine.close_pool()
    return result, engine.last_checkpoint


# ----------------------------------------------------------------------
# RetryPolicy: capped exponential backoff with seeded jitter
# ----------------------------------------------------------------------
def test_backoff_without_jitter_is_capped_exponential():
    policy = RetryPolicy(base_backoff=0.05, backoff_factor=2.0, max_backoff=2.0)
    assert [policy.backoff(attempt) for attempt in range(1, 8)] == [
        0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0,
    ]


def test_jittered_backoff_sequence_is_pinned():
    """The seeded jitter stream is part of the public contract: respawn
    scheduling must replay identically for a fixed ``respawn_seed``."""
    policy = RetryPolicy(
        base_backoff=0.05, backoff_factor=2.0, max_backoff=2.0, jitter=0.25
    )
    rng = random.Random(0)
    sequence = [policy.backoff(attempt, rng) for attempt in range(1, 6)]
    assert sequence == pytest.approx(
        [
            0.05861054628812621,
            0.11289772014701512,
            0.19205715808308452,
            0.35178335005859274,
            0.8045098885474435,
        ],
        abs=0.0,
    )
    # Jitter stays within the documented multiplicative band.
    for attempt, value in enumerate(sequence, start=1):
        capped = min(0.05 * 2.0 ** (attempt - 1), 2.0)
        assert capped * 0.75 <= value <= capped * 1.25


def test_backoff_validates_inputs():
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy().backoff(0)


# ----------------------------------------------------------------------
# Deadlines: environment and EngineOptions overrides
# ----------------------------------------------------------------------
def test_deadlines_resolve_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_HANDSHAKE_TIMEOUT_S", "11.5")
    monkeypatch.setenv("REPRO_REPLY_TIMEOUT_S", "2.25")
    assert default_handshake_timeout() == 11.5
    assert default_reply_timeout() == 2.25
    config = SupervisionConfig()
    assert config.resolved_handshake_timeout() == 11.5
    assert config.resolved_reply_timeout() == 2.25


def test_reply_deadline_zero_disables(monkeypatch):
    monkeypatch.setenv("REPRO_REPLY_TIMEOUT_S", "0")
    assert default_reply_timeout() is None
    assert SupervisionConfig().resolved_reply_timeout() is None
    assert SupervisionConfig(reply_timeout_s=float("inf")).resolved_reply_timeout() is None


def test_garbage_environment_falls_back_to_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_HANDSHAKE_TIMEOUT_S", "soon")
    monkeypatch.setenv("REPRO_REPLY_TIMEOUT_S", "later")
    assert default_handshake_timeout() == 30.0
    assert default_reply_timeout() == 60.0


def test_explicit_config_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_HANDSHAKE_TIMEOUT_S", "11.5")
    monkeypatch.setenv("REPRO_REPLY_TIMEOUT_S", "2.25")
    config = SupervisionConfig(handshake_timeout_s=5.0, reply_timeout_s=7.0)
    assert config.resolved_handshake_timeout() == 5.0
    assert config.resolved_reply_timeout() == 7.0


def test_engine_options_build_supervision_config():
    options = EngineOptions(reply_timeout_s=3.0, handshake_timeout_s=9.0, max_respawns=1)
    supervision = options.supervision()
    assert supervision.resolved_reply_timeout() == 3.0
    assert supervision.resolved_handshake_timeout() == 9.0
    assert supervision.resolved_max_respawns() == 1
    with pytest.raises(ValueError):
        EngineOptions(handshake_timeout_s=0.0)
    with pytest.raises(ValueError):
        EngineOptions(max_respawns=-1)


def test_cli_exposes_supervision_knobs():
    args = build_parser().parse_args(
        [
            "run", "--workers", "4", "--reply-timeout", "2.5",
            "--handshake-timeout", "12", "--max-respawns", "5",
            "--worker-faults", "7",
        ]
    )
    assert args.reply_timeout_s == 2.5
    assert args.handshake_timeout_s == 12.0
    assert args.max_respawns == 5
    assert args.worker_faults == 7


def test_session_coerces_worker_fault_seed(dataset):
    session = ERSession(dataset, systems=("I-PES",), n_increments=4, worker_faults=3)
    try:
        assert session.worker_fault_spec == WorkerFaultSpec.chaos(3)
    finally:
        session.close()


# ----------------------------------------------------------------------
# WorkerFaultSpec: seeded schedules
# ----------------------------------------------------------------------
def test_worker_fault_spec_validation():
    with pytest.raises(ValueError):
        WorkerFaultSpec(kill_rate=1.2)
    with pytest.raises(ValueError):
        WorkerFaultSpec(kill_rate=0.6, hang_rate=0.6)
    with pytest.raises(ValueError):
        WorkerFaultSpec(hang_s=-1.0)
    assert WorkerFaultSpec().is_noop
    assert not WorkerFaultSpec(kill_on=((0, 1),)).is_noop
    assert not WorkerFaultSpec.chaos(7).is_noop


def test_explicit_schedules_fire_on_first_incarnation_only():
    spec = WorkerFaultSpec(kill_on=((0, 2),), hang_on=((1, 1),), corrupt_on=((0, 3),))
    rng = spec.rng_for(0, 0)
    assert spec.action(0, 0, 1, rng) is None
    assert spec.action(0, 0, 2, rng) == "kill"
    assert spec.action(0, 0, 3, rng) == "corrupt"
    assert spec.action(1, 0, 1, spec.rng_for(1, 0)) == "hang"
    # The respawned incarnation does not replay its predecessor's death.
    replacement = spec.rng_for(0, 1)
    assert all(spec.action(0, 1, ordinal, replacement) is None for ordinal in (1, 2, 3))


def test_rate_draws_are_deterministic_per_incarnation():
    spec = WorkerFaultSpec(seed=9, kill_rate=0.2, hang_rate=0.2, corrupt_rate=0.2)

    def schedule(slot, incarnation):
        rng = spec.rng_for(slot, incarnation)
        return [spec.action(slot, incarnation, ordinal, rng) for ordinal in range(1, 30)]

    assert schedule(0, 0) == schedule(0, 0)
    assert schedule(0, 0) != schedule(1, 0)
    assert schedule(0, 0) != schedule(0, 1)
    kinds = set(schedule(0, 0)) | set(schedule(1, 0)) | set(schedule(2, 0))
    assert {"kill", "hang", "corrupt"} <= kinds


# ----------------------------------------------------------------------
# Pool level: eviction, rescue, respawn — per fault kind
# ----------------------------------------------------------------------
def _reference_scores(sample_pairs):
    return _build_matcher("ED")._batch_scores(sample_pairs)


def test_sigkill_mid_round_is_absorbed(sample_pairs):
    """Slot 0's worker SIGKILLs itself on its first scoring request: the
    round still merges bit-identically, only that slot is evicted, and the
    fleet heals back to full width."""
    pool = _faulted_pool(WorkerFaultSpec(kill_on=((0, 1),)))
    try:
        reference = _reference_scores(sample_pairs)
        pool.begin_run()
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.evictions == 1
        assert pool.reassigned_chunks == 1
        assert pool.reply_timeouts == 0
        assert pool.healthy
        assert pool.heal() == pool.size
        assert pool.respawns == 1
        # The healed fleet scores the next round fault-free.
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.reassigned_chunks == 1
    finally:
        pool.close()


def test_hung_worker_hits_reply_deadline(sample_pairs):
    """A worker sleeping past the fleet-wide reply deadline is detected as
    hung, evicted, and its chunk rescued — the master never waits out the
    full hang."""
    pool = _faulted_pool(WorkerFaultSpec(hang_on=((1, 1),), hang_s=30.0))
    try:
        reference = _reference_scores(sample_pairs)
        pool.begin_run()
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.reply_timeouts == 1
        assert pool.evictions == 1
        assert pool.reassigned_chunks == 1
        assert pool.heal() == pool.size
    finally:
        pool.close()


def test_corrupt_reply_is_rejected_and_rescued(sample_pairs):
    """A truncated similarity list must never merge (it would misalign
    every later pair): the garbled worker is evicted and the chunk
    re-scored in-process."""
    pool = _faulted_pool(WorkerFaultSpec(corrupt_on=((0, 1), (1, 2))))
    try:
        reference = _reference_scores(sample_pairs)
        pool.begin_run()
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.evictions == 1
        assert pool.reassigned_chunks == 1
        assert pool.heal() == pool.size
        # Slot 1's second-request corruption fires in round two.
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.evictions == 2
        assert pool.reassigned_chunks == 2
        assert pool.heal() == pool.size
        assert pool.respawns == 2
    finally:
        pool.close()


def test_single_bad_pipe_does_not_condemn_the_fleet(sample_pairs):
    """A reset/scatter pipe failure evicts one slot; the pool stays
    healthy and ``broken`` remains reserved for a fully dead fleet."""
    pool = _faulted_pool(None)
    try:
        reference = _reference_scores(sample_pairs)
        pool._slots[0].connection.close()
        pool.begin_run()
        assert pool._slots[0].state in (EVICTED, DEAD)
        assert pool._slots[1].state == ALIVE
        assert pool.healthy
        assert not pool.broken
        assert pool.batch_scores(sample_pairs) == reference
        assert pool.heal() == pool.size
    finally:
        pool.close()


def test_respawn_budget_exhaustion_breaks_the_pool(sample_pairs):
    """With ``max_respawns=0`` every eviction is terminal for its slot;
    when the whole fleet is dead the pool turns ``broken`` and scoring
    raises for good."""
    supervision = SupervisionConfig(
        reply_timeout_s=1.0,
        max_respawns=0,
        respawn_backoff=FAST_SUPERVISION.respawn_backoff,
    )
    pool = _faulted_pool(
        WorkerFaultSpec(kill_on=((0, 1), (1, 2))), supervision=supervision
    )
    try:
        reference = _reference_scores(sample_pairs)
        pool.begin_run()
        assert pool.batch_scores(sample_pairs) == reference
        assert pool._slots[0].state == DEAD
        assert pool.healthy  # slot 1 is still scoring
        assert pool.batch_scores(sample_pairs) == reference
        assert pool._slots[1].state == DEAD
        assert pool.broken
        assert not pool.healthy
        with pytest.raises(WorkerPoolError):
            pool.batch_scores(sample_pairs)
    finally:
        pool.close()


def test_supervision_telemetry_counts_the_schedule(sample_pairs):
    """Eviction/respawn/rescue counters match the explicit fault schedule
    exactly — the determinism that makes chaos benchmarks assertable."""
    pool = _faulted_pool(
        WorkerFaultSpec(kill_on=((0, 1),), corrupt_on=((1, 2),), hang_on=((0, 3),), hang_s=30.0)
    )
    try:
        reference = _reference_scores(sample_pairs)
        pool.begin_run()
        for _round in range(4):
            assert pool.batch_scores(sample_pairs) == reference
            pool.heal()
        # kill @ (0,1) and corrupt @ (1,2) fired; hang @ (0,3) did not:
        # slot 0's replacement runs incarnation 1, where explicit
        # schedules no longer apply.
        assert pool.evictions == 2
        assert pool.reassigned_chunks == 2
        assert pool.reply_timeouts == 0
        assert pool.respawns == 2
        assert pool.alive_count == pool.size
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Crash-safe shm lifecycle
# ----------------------------------------------------------------------
def _shm_available():
    return os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK)


def test_atexit_sweep_unlinks_unclosed_segments():
    """A master that exits without ``close()`` must not leak segments: the
    atexit sweep unlinks everything still tracked."""
    if not _shm_available():
        pytest.skip("/dev/shm unavailable on this host")
    script = (
        "import sys; sys.path.insert(0, 'src');"
        "from repro.parallel.pool import _create_segment;"
        "print(_create_segment(32).name)"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, cwd=os.path.dirname(os.path.dirname(__file__)),
    )
    assert completed.returncode == 0, completed.stderr
    name = completed.stdout.strip().splitlines()[-1]
    assert name.startswith("repro_shm_")
    assert not os.path.exists(os.path.join("/dev/shm", name))


def test_stale_segments_of_dead_masters_are_reaped():
    """Debris named by a no-longer-running pid (a SIGKILLed master) is
    unlinked by the startup sweep."""
    if not _shm_available():
        pytest.skip("/dev/shm unavailable on this host")
    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    stale = os.path.join("/dev/shm", f"repro_shm_{child.pid}_1")
    with open(stale, "wb") as handle:
        handle.write(b"\0" * 16)
    try:
        assert sweep_stale_segments() >= 1
        assert not os.path.exists(stale)
    finally:
        if os.path.exists(stale):  # pragma: no cover - sweep failed
            os.unlink(stale)


def test_live_segments_are_not_reaped():
    """The sweep never touches segments of running masters — including our
    own freshly published one."""
    if not _shm_available():
        pytest.skip("/dev/shm unavailable on this host")
    segment = _create_segment(16)
    try:
        sweep_stale_segments()
        assert os.path.exists(os.path.join("/dev/shm", segment.name))
    finally:
        from repro.parallel.pool import _release_segment

        _release_segment(segment)


# ----------------------------------------------------------------------
# Engine level: bit-identity under chaos, all strategies × both engines
# ----------------------------------------------------------------------
#: One kill, one corrupt, one hang early in the run: every supervision
#: path exercised inside a real engine loop.
ENGINE_FAULTS = WorkerFaultSpec(
    kill_on=((0, 2),), corrupt_on=((1, 3),), hang_on=((0, 4),), hang_s=30.0
)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_chaos_invariance_serial_engine(dataset, plan, strategy):
    serial, serial_ckpt = _run(
        StreamingEngine, dataset, plan, strategy, checkpoint_every=2.0
    )
    pool = _faulted_pool(ENGINE_FAULTS)
    try:
        chaotic, chaotic_ckpt = _run(
            StreamingEngine, dataset, plan, strategy,
            workers=pool.size, pool=pool, checkpoint_every=2.0,
        )
        assert pool.evictions > 0, "fault schedule never fired"
        assert _comparable(chaotic) == _comparable(serial)
        assert _checkpoint_fingerprint(chaotic_ckpt) == _checkpoint_fingerprint(serial_ckpt)
        counters = chaotic.details["metrics"]["counters"]
        assert counters["parallel.supervision.evictions"] == pool.evictions
        assert counters["parallel.supervision.reassigned_chunks"] == pool.reassigned_chunks
        assert pool.heal() == pool.size
    finally:
        pool.close()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_chaos_invariance_pipelined_engine(dataset, plan, strategy):
    serial, _ = _run(PipelinedStreamingEngine, dataset, plan, strategy)
    pool = _faulted_pool(ENGINE_FAULTS)
    try:
        chaotic, _ = _run(
            PipelinedStreamingEngine, dataset, plan, strategy,
            workers=pool.size, pool=pool,
        )
        assert pool.evictions > 0, "fault schedule never fired"
        assert _comparable(chaotic) == _comparable(serial)
    finally:
        pool.close()


def test_crash_resume_across_fault_schedule(dataset, plan):
    """A run that crashes mid-chaos resumes from its checkpoint on a fresh
    faulted fleet and still ends bit-identical to the uninterrupted serial
    run."""
    pool = _faulted_pool(ENGINE_FAULTS)
    try:
        engine = StreamingEngine(
            _build_matcher("ED"),
            budget=BUDGET,
            workers=pool.size,
            pool=pool,
            resilience=ResilienceConfig(checkpoint_every=1.0, crash_at=4.0),
        )
        with pytest.raises(SimulatedCrash) as crash:
            engine.run(_build_system("I-PES", dataset), plan, dataset.ground_truth)
        checkpoint = crash.value.checkpoint
        assert checkpoint is not None
    finally:
        pool.close()

    resume_pool = _faulted_pool(WorkerFaultSpec(kill_on=((1, 1),)))
    try:
        resumed = StreamingEngine(
            _build_matcher("ED"), budget=BUDGET,
            workers=resume_pool.size, pool=resume_pool,
        ).run(
            _build_system("I-PES", dataset), plan, dataset.ground_truth,
            resume_from=checkpoint,
        )
    finally:
        resume_pool.close()
    uninterrupted, _ = _run(StreamingEngine, dataset, plan, "I-PES")
    assert resumed.duplicates == uninterrupted.duplicates
    assert resumed.clock_end == uninterrupted.clock_end
    assert resumed.final_pc == uninterrupted.final_pc


def test_session_chaos_run_matches_clean_run(dataset):
    """The ERSession-level knob: a seeded chaos fleet produces the same
    result surface as the serial run."""
    def session_for(workers, worker_faults):
        return ERSession(
            dataset,
            systems=("I-PES",),
            matcher="ED",
            n_increments=8,
            rate=5.0,
            budget=BUDGET,
            worker_faults=worker_faults,
            # min_shard=1 so even the small test batches shard; the
            # production threshold only changes *when* the pool is
            # consulted, never the results.
            engine=EngineOptions(workers=workers, reply_timeout_s=1.0, min_shard=1),
        )

    with session_for(1, None) as session:
        serial = session.run()
    with session_for(2, WorkerFaultSpec(kill_on=((0, 3),))) as session:
        chaotic = session.run()
        if session._pool is None:
            pytest.skip("process pool unavailable on this host")
    assert _comparable(chaotic) == _comparable(serial)
    counters = chaotic.details["metrics"]["counters"]
    assert counters["parallel.supervision.evictions"] == 1
    assert counters["parallel.supervision.reassigned_chunks"] == 1
