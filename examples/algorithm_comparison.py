"""Side-by-side comparison of every algorithm in the library.

Runs the three PIER strategies, the incremental baseline, and the naive
progressive adaptations over the same fast stream (a miniature of the
paper's Figure 7 setting) and prints the PC-over-time table and summary.

Run with:  python examples/algorithm_comparison.py [dataset] [JS|ED]
"""

from __future__ import annotations

import sys

from repro import ERSession
from repro.evaluation import pc_over_time_table, summary_table

ALGORITHMS = ("I-PES", "I-PCS", "I-PBS", "I-BASE", "PPS-GLOBAL", "PPS-LOCAL")


def main() -> None:
    dataset_name = sys.argv[1] if len(sys.argv) > 1 else "dbpedia"
    matcher = sys.argv[2] if len(sys.argv) > 2 else "JS"

    print(f"Running {len(ALGORITHMS)} algorithms on {dataset_name} "
          f"({matcher} matcher, 32 dD/s, 120s virtual budget)...\n")
    with ERSession(
        dataset_name,
        systems=ALGORITHMS,
        matcher=matcher,
        scale=0.3,
        n_increments=200,
        rate=32.0,       # the paper's fast stream
        budget=120.0,
    ) as session:
        results = session.compare()

    times = [5, 10, 20, 40, 60, 90, 120]
    print("PC over virtual time ('x' marks: stream fully consumed):")
    print(pc_over_time_table(results, times))
    print()
    print(summary_table(results))


if __name__ == "__main__":
    main()
