"""Extensions tour: irregular streams, pipelined execution, auto-strategy.

This example exercises the features this library adds beyond the paper's
core algorithms:

* **Poisson arrivals** — increments arriving at a varying rate, as the
  paper's problem statement allows;
* **the strategy heuristic** (`I-AUTO`) — the paper's future-work item:
  inspect a sample of the data and pick I-PBS (relational) or I-PES
  (heterogeneous) automatically;
* **the pipelined engine** — two virtual clocks modelling the paper's
  task-parallel deployment, letting ingestion overlap with matching;
* **JSON export** of the run result for external plotting.

Run with:  python examples/adaptive_pipeline.py
"""

from __future__ import annotations

import json

from repro import ERSession, EngineOptions, load_dataset, split_into_increments
from repro.core.increments import make_poisson_stream_plan
from repro.evaluation import run_result_to_dict, summary_table


def main() -> None:
    results = {}
    for dataset_name in ("census_2m", "dbpedia"):
        dataset = load_dataset(dataset_name, scale=0.3)
        increments = split_into_increments(dataset, 120, seed=0)
        plan = make_poisson_stream_plan(increments, rate=16.0, seed=7)

        # Irregular arrivals don't fit the session's built-in plan shapes,
        # so feed the Poisson plan through the push-mode surface instead.
        for label, options in (
            ("serial", EngineOptions()),
            ("pipelined", EngineOptions(pipelined=True)),
        ):
            with ERSession(
                dataset, systems=("I-AUTO",), matcher="ED", engine=options,
                budget=60.0,
            ) as session:
                # The heuristic inspects the first profiles and picks the
                # strategy (I-PBS for relational data, I-PES otherwise).
                push = session.push("I-AUTO")
                push.feed_plan(plan)
                push.drain(60.0)
                result = push.results()
            if label == "serial":
                print(f"{dataset_name}: heuristic selected {result.system_name}")
            results[f"{dataset_name} {label} {result.system_name}"] = result

    print()
    print(summary_table(results))

    # Export one result for external plotting.
    sample_key = next(iter(results))
    payload = run_result_to_dict(results[sample_key])
    print(f"\nJSON export preview for {sample_key!r}:")
    print(json.dumps({k: payload[k] for k in ("system", "final_pc", "clock_end")}, indent=2))


if __name__ == "__main__":
    main()
