"""Adaptive building & construction: the paper's second motivating scenario.

An architectural design model (available upfront, semi-structured IFC-like
profiles) must be matched against products observed on the construction
site, whose monitoring profiles (point-cloud/sensor extractions with a
different, AutomationML-like schema) *stream in* while construction
progresses.  Early matches let pre-fabrication adapt (e.g. reposition
pre-drilled holes), so progressive behaviour matters.

This example builds the two heterogeneous collections from scratch with the
public API — no generator involved — and runs Clean-Clean PIER over the
streaming site observations.

Run with:  python examples/construction_pipeline.py
"""

from __future__ import annotations

import random

from repro import (
    Dataset,
    ERKind,
    ERSession,
    EntityProfile,
    GroundTruth,
)

ELEMENT_TYPES = ("wall", "beam", "column", "slab", "panel", "truss", "girder")
MATERIALS = ("timber", "steel", "concrete", "cltpanel", "glulam")


def build_design_model(rng: random.Random, n_elements: int):
    """IFC-like design profiles: typed elements with ids and placements."""
    profiles, specs = [], []
    for index in range(n_elements):
        element_type = rng.choice(ELEMENT_TYPES)
        material = rng.choice(MATERIALS)
        tag = f"{element_type}{index:03d}"
        level = rng.randint(1, 4)
        grid = f"grid{rng.choice('abcdef')}{rng.randint(1, 9)}"
        profiles.append(
            EntityProfile(
                index,
                {
                    "GlobalId": tag,
                    "IfcType": f"ifc{element_type}",
                    "Material": material,
                    "Storey": f"level {level}",
                    "Placement": grid,
                },
                source=0,
            )
        )
        specs.append((tag, element_type, material, level, grid))
    return profiles, specs


def observe_on_site(rng: random.Random, specs, start_pid: int):
    """AutomationML-like monitoring profiles for a (shuffled) subset."""
    profiles, matches = [], []
    pid = start_pid
    observed = list(enumerate(specs))
    rng.shuffle(observed)
    for design_pid, (tag, element_type, material, level, grid) in observed:
        if rng.random() < 0.15:
            continue  # element not yet installed
        attributes = {
            "scanLabel": tag if rng.random() < 0.8 else tag.replace("0", "o", 1),
            "detectedClass": element_type,
            "floor": str(level),
        }
        if rng.random() < 0.6:
            attributes["materialEstimate"] = material
        if rng.random() < 0.5:
            attributes["nearGrid"] = grid
        profiles.append(EntityProfile(pid, attributes, source=1))
        matches.append((design_pid, pid))
        pid += 1
    return profiles, matches


def main() -> None:
    rng = random.Random(42)
    design_profiles, specs = build_design_model(rng, n_elements=400)
    site_profiles, matches = observe_on_site(rng, specs, start_pid=len(design_profiles))

    dataset = Dataset(
        "construction",
        design_profiles + site_profiles,
        GroundTruth(matches),
        ERKind.CLEAN_CLEAN,
    )
    print(f"Design model: {len(design_profiles)} elements; "
          f"site observations: {len(site_profiles)}; "
          f"expected matches: {len(matches)}")

    # The design model is available upfront (ingested at t=0); site
    # observations stream in at 4 scan-batches per virtual second through
    # the push-mode session surface — fed as they "arrive", the way a
    # live monitoring feed would deliver them.
    with ERSession(dataset, systems=("I-PES",), matcher="JS", budget=120.0) as session:
        push = session.push()
        push.ingest(design_profiles, at=0.0)
        for i, start in enumerate(range(0, len(site_profiles), 10)):
            push.ingest(site_profiles[start : start + 10], at=(i + 1) / 4.0)
        push.drain(120.0)
        result = push.results()

    print(f"\nMatched {len(result.duplicates)} site observations to design elements")
    print(f"Pair completeness: {result.final_pc:.3f}")
    print("PC while the site stream is still arriving:")
    for t in (5.0, 10.0, 20.0, 40.0):
        print(f"  t={t:5.1f}s  PC={result.curve.pc_at_time(t):.3f}")

    print("\nSample alignment (first 3):")
    for pid_x, pid_y in sorted(result.duplicates)[:3]:
        print(f"  design {dataset[pid_x].text()!r}")
        print(f"    site {dataset[pid_y].text()!r}")


if __name__ == "__main__":
    main()
