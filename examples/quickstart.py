"""Quickstart: progressive incremental ER in a dozen lines.

Loads the dblp-acm benchmark analogue, streams it into the PIER pipeline as
50 increments arriving at 5 ΔD per (virtual) second, and prints the progress
of Pair Completeness over time together with the duplicates found.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import load_dataset, resolve_stream


def main() -> None:
    dataset = load_dataset("dblp_acm")
    print(f"Dataset: {dataset.describe()}")

    result = resolve_stream(
        dataset,
        algorithm="I-PES",   # the paper's method of choice
        matcher="JS",        # cheap Jaccard matching
        n_increments=50,
        rate=5.0,            # 5 increments per virtual second
        budget=60.0,         # 60 virtual seconds total
    )

    print(f"\nAlgorithm:            {result.system_name}")
    print(f"Comparisons executed: {result.comparisons_executed}")
    print(f"Final PC:             {result.final_pc:.3f}")
    print(f"Duplicates found:     {len(result.duplicates)}")
    consumed = result.stream_consumed_at
    print(f"Stream consumed at:   {consumed:.1f}s" if consumed else "Stream not consumed")

    print("\nPC over virtual time:")
    for t in (2, 5, 10, 15, 20, 30, 60):
        bar = "#" * int(40 * result.curve.pc_at_time(t))
        print(f"  t={t:3d}s  PC={result.curve.pc_at_time(t):.3f}  {bar}")

    print("\nSample duplicates (first 5):")
    for pid_x, pid_y in sorted(result.duplicates)[:5]:
        left, right = dataset[pid_x], dataset[pid_y]
        print(f"  {left.text()[:60]!r}")
        print(f"    == {right.text()[:60]!r}")


if __name__ == "__main__":
    main()
