"""Fraud / identity monitoring: the paper's anti-financial-crime motivation.

Account registrations stream into a monitoring system.  Fraudsters re-use
identities with small variations; every duplicate identity should be flagged
*as early as possible* after its profile arrives ("the earlier the illicit
is detected, the better, since follow-up crimes may be prevented").

This example streams Febrl-style identity records and compares the
*detection latency* — virtual time between the arrival of the second record
of a duplicate pair and the moment the match is emitted — of the adaptive
PIER algorithm (I-PES) against the incremental baseline (I-BASE).

Run with:  python examples/fraud_monitoring.py
"""

from __future__ import annotations

from repro import ERSession, load_dataset


def detection_latencies(plan, result) -> list[float]:
    """Latency per found match: emission time minus later-arrival time."""
    arrival_of: dict[int, float] = {}
    for when, increment in plan:
        for profile in increment:
            arrival_of[profile.pid] = when
    latencies = []
    for emitted_at, (pid_x, pid_y) in result.match_events:
        ready_at = max(arrival_of[pid_x], arrival_of[pid_y])
        latencies.append(max(0.0, emitted_at - ready_at))
    return latencies


def main() -> None:
    # A registration stream: 2000 identity records, ~40% involved in
    # duplicate clusters, arriving as 100 bursts at 8 bursts/second.
    dataset = load_dataset("census_2m", scale=0.65)
    session = ERSession(
        dataset,
        systems=("I-PES", "I-BASE"),
        matcher="JS",
        n_increments=100,
        rate=8.0,
        budget=40.0,
        seed=1,
    )
    print(f"Monitoring stream: {len(dataset)} identity records, "
          f"{len(dataset.ground_truth)} duplicate pairs, 8 bursts/s\n")

    for algorithm in session.systems:
        result = session.run(algorithm)
        latencies = detection_latencies(session.plan_for(algorithm), result)
        mean_latency = sum(latencies) / len(latencies) if latencies else float("nan")
        print(f"{algorithm}:")
        print(f"  duplicate identities flagged: {len(result.duplicates)}")
        print(f"  pair completeness:            {result.final_pc:.3f}")
        print(f"  PC two seconds into stream:   {result.curve.pc_at_time(2.0):.3f}")
        print(f"  PC at half the budget:        {result.curve.pc_at_time(20.0):.3f}")
        print(f"  mean detection latency:       {mean_latency:.2f}s (virtual)")
        print()


if __name__ == "__main__":
    main()
