"""Fraud / identity monitoring: the paper's anti-financial-crime motivation.

Account registrations stream into a monitoring system.  Fraudsters re-use
identities with small variations; every duplicate identity should be flagged
*as early as possible* after its profile arrives ("the earlier the illicit
is detected, the better, since follow-up crimes may be prevented").

This example streams Febrl-style identity records and compares the
*detection latency* — virtual time between the arrival of the second record
of a duplicate pair and the moment the match is emitted — of the adaptive
PIER algorithm (I-PES) against the incremental baseline (I-BASE).

Run with:  python examples/fraud_monitoring.py
"""

from __future__ import annotations

from repro import (
    StreamingEngine,
    load_dataset,
    make_stream_plan,
    make_system,
    split_into_increments,
)
from repro.evaluation import make_matcher


def detection_latencies(plan, result) -> list[float]:
    """Latency per found match: emission time minus later-arrival time."""
    arrival_of: dict[int, float] = {}
    for when, increment in plan:
        for profile in increment:
            arrival_of[profile.pid] = when
    latencies = []
    for emitted_at, (pid_x, pid_y) in result.match_events:
        ready_at = max(arrival_of[pid_x], arrival_of[pid_y])
        latencies.append(max(0.0, emitted_at - ready_at))
    return latencies


def main() -> None:
    # A registration stream: 2000 identity records, ~40% involved in
    # duplicate clusters, arriving as 100 bursts at 8 bursts/second.
    dataset = load_dataset("census_2m", scale=0.65)
    increments = split_into_increments(dataset, 100, seed=1)
    plan = make_stream_plan(increments, rate=8.0)
    print(f"Monitoring stream: {len(dataset)} identity records, "
          f"{len(dataset.ground_truth)} duplicate pairs, 8 bursts/s\n")

    for algorithm in ("I-PES", "I-BASE"):
        engine = StreamingEngine(make_matcher("JS"), budget=40.0)
        system = make_system(algorithm, dataset)
        result = engine.run(system, plan, dataset.ground_truth)
        latencies = detection_latencies(plan, result)
        mean_latency = sum(latencies) / len(latencies) if latencies else float("nan")
        print(f"{algorithm}:")
        print(f"  duplicate identities flagged: {len(result.duplicates)}")
        print(f"  pair completeness:            {result.final_pc:.3f}")
        print(f"  PC two seconds into stream:   {result.curve.pc_at_time(2.0):.3f}")
        print(f"  PC at half the budget:        {result.curve.pc_at_time(20.0):.3f}")
        print(f"  mean detection latency:       {mean_latency:.2f}s (virtual)")
        print()


if __name__ == "__main__":
    main()
